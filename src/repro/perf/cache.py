"""Persistent cross-run solve cache keyed by content fingerprints.

Re-analysing an unchanged (or mostly-unchanged) model should be
near-free: the expensive artefacts of an analysis — per-model chain
solves, the MOCUS cutset list, and the full record set — are pure
functions of *content* (chain fingerprints, tree structure, solver
options), so they can be reused across processes and across days.  This
module provides the on-disk store behind ``--cache-dir``:

* **solve layer** — ``(model_signature, epsilon, max_chain_states,
  lumped) -> (probability, chain_states)``, the per-unique-model
  transient solve (:mod:`repro.perf.fingerprint` keys, the same ones
  the in-memory :class:`~repro.core.quantify.QuantificationCache` and
  the dedup plan use);
* **mocus layer** — ``(tree digest, cutoff, max_partials) ->`` the
  *pre-truncation* minimal cutsets by name, re-truncated by the loading
  process so boundary floats behave exactly as a fresh local run;
* **records layer** — ``(model digest, value-affecting options) ->``
  the full record list of a clean run, the short-circuit that makes a
  warm re-analysis skip translate/MOCUS/quantify entirely;
* **bdd layer** — ``(tree digest, node budget, ordering) ->`` the exact
  BDD quantification of a static tree (probability, node count,
  ordering used, module count), keyed alongside the solve-layer entries
  so a warm static re-analysis skips compilation too.

The store is a single sqlite database (WAL mode, busy-timeout) so
concurrent analyses sharing one cache directory are safe: writers
serialise per-statement, ``INSERT OR REPLACE`` keeps entries atomic,
and readers never see a torn payload.  Every operation is wrapped so a
corrupted file, a bad payload or a locked database degrades to a cache
*miss* (counted in ``errors``) — the cache can accelerate an analysis
but can never fail one.

Correctness guards:

* every payload is stamped with :data:`SCHEMA_VERSION`; a layout change
  invalidates old entries wholesale;
* solve values are validated on read (finite, within ``[0, 1]``,
  non-negative integer state count) — an invalid row is deleted and
  reported as a miss, never served;
* nothing is *written* while fault injection is armed
  (:func:`repro.robust.faults.any_armed`), so a chaos campaign can
  never persist a corrupted value into later runs;
* reads pass the ``cache_read`` / ``cache_value`` fault stages, which is
  how ``sdft chaos`` proves a corrupted entry is caught by the P1–P4
  verification guards rather than silently served.
"""

from __future__ import annotations

import hashlib
import json
import os
import sqlite3
import threading
import time
from typing import TYPE_CHECKING

from repro.robust import faults

if TYPE_CHECKING:
    from repro.ft.tree import FaultTree

__all__ = ["SolveCache", "default_cache_dir", "tree_digest"]

#: Payload schema version; bump on any incompatible change to the key
#: composition or payload layout — old entries then simply never match.
#: v2: records payloads carry the served method/total (BDD static
#: engine), and the bdd layer exists.
#: v3: cutoff membership is canonical (sorted-order products keep
#: boundary cutsets the old search pruned), and records carry their
#: dependency sets for incremental reuse — pre-v3 mocus/records
#: entries would re-serve the old membership, so they must miss.
SCHEMA_VERSION = 3

#: Database file name inside the cache directory.
_DB_NAME = "solve-cache.sqlite"

#: Default bound on stored entries per layer; the oldest rows are
#: evicted once it is exceeded (counted in ``evictions``).
_DEFAULT_MAX_ENTRIES = 200_000

#: How long a writer waits on a locked database before degrading to a
#: no-op (concurrent analyses sharing a cache directory).
_BUSY_TIMEOUT_MS = 2_000


def default_cache_dir() -> str:
    """The default on-disk location: ``$REPRO_CACHE_DIR`` or ``~/.cache/repro``."""
    override = os.environ.get("REPRO_CACHE_DIR")
    if override:
        return override
    return os.path.join(os.path.expanduser("~"), ".cache", "repro")


def tree_digest(tree: "FaultTree") -> str:
    """A stable content digest of a static fault tree.

    Covers everything MOCUS output depends on: event probabilities,
    gate structure (type, children order, ``k``) and the top gate.
    """
    payload = {
        "events": sorted(
            (name, repr(event.probability))
            for name, event in tree.events.items()
        ),
        "gates": sorted(
            (name, gate.gate_type.value, list(gate.children), gate.k)
            for name, gate in tree.gates.items()
        ),
        "top": tree.top,
    }
    canonical = json.dumps(payload, sort_keys=True)
    return hashlib.sha256(canonical.encode()).hexdigest()


def _digest(parts: tuple) -> str:
    """Key digest: SHA-256 of the canonical ``repr`` of the key parts.

    ``repr`` of nested tuples of primitives (names, ints, floats via
    ``repr``-exact formatting, fingerprint hex strings) is canonical
    and collision-free for our key shapes.
    """
    return hashlib.sha256(repr(parts).encode()).hexdigest()


class SolveCache:
    """The persistent three-layer cache behind ``--cache-dir``.

    One instance per analysis (cheap to open — sqlite defers real work
    to the first statement).  All hit/miss/error counters are
    per-instance, so the analyzer can report exactly what *this* run
    got out of the cache.
    """

    def __init__(
        self, cache_dir: str, max_entries: int = _DEFAULT_MAX_ENTRIES
    ) -> None:
        self.cache_dir = cache_dir
        self.max_entries = max_entries
        self.solve_hits = 0
        self.solve_misses = 0
        self.mocus_hits = 0
        self.mocus_misses = 0
        self.records_hits = 0
        self.records_misses = 0
        self.bdd_hits = 0
        self.bdd_misses = 0
        self.errors = 0
        self.evictions = 0
        self._lock = threading.Lock()
        self._connection: sqlite3.Connection | None = None
        self._broken = False

    # ------------------------------------------------------------------
    # Connection plumbing (failures always degrade, never raise)
    # ------------------------------------------------------------------

    def _connect(self) -> sqlite3.Connection | None:
        if self._broken:
            return None
        if self._connection is not None:
            return self._connection
        try:
            os.makedirs(self.cache_dir, exist_ok=True)
            connection = sqlite3.connect(
                os.path.join(self.cache_dir, _DB_NAME),
                timeout=_BUSY_TIMEOUT_MS / 1000.0,
                check_same_thread=False,
            )
            connection.execute("PRAGMA journal_mode=WAL")
            connection.execute(f"PRAGMA busy_timeout={_BUSY_TIMEOUT_MS}")
            connection.execute(
                "CREATE TABLE IF NOT EXISTS entries ("
                "  key TEXT PRIMARY KEY,"
                "  kind TEXT NOT NULL,"
                "  payload TEXT NOT NULL,"
                "  created REAL NOT NULL)"
            )
            connection.execute(
                "CREATE INDEX IF NOT EXISTS entries_kind_created "
                "ON entries (kind, created)"
            )
            connection.commit()
        except (sqlite3.Error, OSError):
            self.errors += 1
            self._broken = True
            return None
        self._connection = connection
        return connection

    def close(self) -> None:
        """Release the underlying database handle (idempotent)."""
        with self._lock:
            if self._connection is not None:
                try:
                    self._connection.close()
                except sqlite3.Error:
                    pass
                self._connection = None

    def _read(self, kind: str, key: str) -> dict | None:
        """One validated payload, or ``None``; bad rows are deleted."""
        with self._lock:
            connection = self._connect()
            if connection is None:
                return None
            try:
                row = connection.execute(
                    "SELECT payload FROM entries WHERE key = ?", (key,)
                ).fetchone()
            except sqlite3.Error:
                self.errors += 1
                return None
            if row is None:
                return None
            try:
                payload = json.loads(row[0])
                if not isinstance(payload, dict):
                    raise ValueError("payload is not an object")
                if payload.get("schema") != SCHEMA_VERSION:
                    raise ValueError("schema version mismatch")
            except ValueError:
                # A torn or stale payload is a *miss*: drop the row so it
                # cannot keep costing a parse failure on every lookup.
                self.errors += 1
                self._delete(connection, key)
                return None
            return payload

    def _write(self, kind: str, key: str, payload: dict) -> None:
        """Persist one payload (no-op while faults are armed or on error)."""
        if faults.any_armed():
            # A chaos campaign (or a fault-injection test) is running:
            # values in flight may be deliberately corrupted, and a
            # corrupted value must never outlive the campaign.
            return
        payload = dict(payload)
        payload["schema"] = SCHEMA_VERSION
        with self._lock:
            connection = self._connect()
            if connection is None:
                return
            try:
                connection.execute(
                    "INSERT OR REPLACE INTO entries "
                    "(key, kind, payload, created) VALUES (?, ?, ?, ?)",
                    (key, kind, json.dumps(payload), time.time()),
                )
                self._evict(connection, kind)
                connection.commit()
            except sqlite3.Error:
                self.errors += 1

    def _delete(self, connection: sqlite3.Connection, key: str) -> None:
        try:
            connection.execute("DELETE FROM entries WHERE key = ?", (key,))
            connection.commit()
        except sqlite3.Error:
            self.errors += 1

    def _evict(self, connection: sqlite3.Connection, kind: str) -> None:
        """Drop the oldest rows of ``kind`` beyond :attr:`max_entries`."""
        count = connection.execute(
            "SELECT COUNT(*) FROM entries WHERE kind = ?", (kind,)
        ).fetchone()[0]
        overflow = count - self.max_entries
        if overflow <= 0:
            return
        connection.execute(
            "DELETE FROM entries WHERE key IN ("
            "  SELECT key FROM entries WHERE kind = ?"
            "  ORDER BY created ASC LIMIT ?)",
            (kind, overflow),
        )
        self.evictions += overflow

    # ------------------------------------------------------------------
    # Solve layer
    # ------------------------------------------------------------------

    @staticmethod
    def _solve_key(
        signature: tuple, epsilon: float, max_chain_states: int, lumped: bool
    ) -> str:
        return _digest(
            ("solve", SCHEMA_VERSION, signature, epsilon, max_chain_states,
             bool(lumped))
        )

    def get_solve(
        self,
        signature: tuple,
        epsilon: float,
        max_chain_states: int,
        lumped: bool,
    ) -> tuple[float, int] | None:
        """Cached ``(probability, chain_states)`` for one unique model."""
        payload = self._read(
            "solve", self._solve_key(signature, epsilon, max_chain_states, lumped)
        )
        if payload is not None:
            probability = payload.get("probability")
            chain_states = payload.get("chain_states")
            if (
                isinstance(probability, float)
                and 0.0 <= probability <= 1.0
                and isinstance(chain_states, int)
                and chain_states >= 0
            ):
                self.solve_hits += 1
                # The chaos hooks: prove a corrupted-after-validation
                # value is caught by the verify guards, never served
                # silently (see repro.robust.chaos).
                faults.check("cache_read", layer="solve")
                probability = faults.corrupt(
                    "cache_value", probability, layer="solve"
                )
                return (probability, chain_states)
            self.errors += 1
        self.solve_misses += 1
        return None

    def put_solve(
        self,
        signature: tuple,
        epsilon: float,
        max_chain_states: int,
        lumped: bool,
        probability: float,
        chain_states: int,
    ) -> None:
        """Persist one unique-model solve."""
        if not (
            isinstance(probability, float)
            and 0.0 <= probability <= 1.0
            and chain_states >= 0
        ):
            return  # never persist an implausible value
        self._write(
            "solve",
            self._solve_key(signature, epsilon, max_chain_states, lumped),
            {"probability": probability, "chain_states": int(chain_states)},
        )

    # ------------------------------------------------------------------
    # MOCUS layer
    # ------------------------------------------------------------------

    @staticmethod
    def _mocus_key(digest: str, cutoff: float, max_partials: int) -> str:
        return _digest(("mocus", SCHEMA_VERSION, digest, cutoff, max_partials))

    def get_mocus(
        self, digest: str, cutoff: float, max_partials: int
    ) -> list[list[str]] | None:
        """The cached pre-truncation minimal cutsets (name lists)."""
        payload = self._read(
            "mocus", self._mocus_key(digest, cutoff, max_partials)
        )
        if payload is not None:
            cutsets = payload.get("cutsets")
            if isinstance(cutsets, list) and all(
                isinstance(c, list) and all(isinstance(n, str) for n in c)
                for c in cutsets
            ):
                self.mocus_hits += 1
                faults.check("cache_read", layer="mocus")
                return cutsets
            self.errors += 1
        self.mocus_misses += 1
        return None

    def put_mocus(
        self,
        digest: str,
        cutoff: float,
        max_partials: int,
        cutsets: list[list[str]],
    ) -> None:
        """Persist one complete (non-truncated) MOCUS result."""
        self._write(
            "mocus",
            self._mocus_key(digest, cutoff, max_partials),
            {"cutsets": cutsets},
        )

    # ------------------------------------------------------------------
    # Records layer (full clean-run results)
    # ------------------------------------------------------------------

    @staticmethod
    def _records_key(fingerprint: str, options_key: tuple) -> str:
        return _digest(("records", SCHEMA_VERSION, fingerprint, options_key))

    def get_records(self, fingerprint: str, options_key: tuple) -> dict | None:
        """The full stored result of a clean prior run, or ``None``."""
        payload = self._read(
            "records", self._records_key(fingerprint, options_key)
        )
        if payload is not None:
            if isinstance(payload.get("records"), list) and isinstance(
                payload.get("static_bound"), float
            ):
                self.records_hits += 1
                faults.check("cache_read", layer="records")
                return payload
            self.errors += 1
        self.records_misses += 1
        return None

    def put_records(
        self, fingerprint: str, options_key: tuple, payload: dict
    ) -> None:
        """Persist the full record set of a clean run."""
        self._write(
            "records", self._records_key(fingerprint, options_key), payload
        )

    # ------------------------------------------------------------------
    # BDD layer (exact static quantifications)
    # ------------------------------------------------------------------

    @staticmethod
    def _bdd_key(digest: str, node_budget: "int | None", ordering: str) -> str:
        return _digest(("bdd", SCHEMA_VERSION, digest, node_budget, ordering))

    def get_bdd(
        self, digest: str, node_budget: "int | None", ordering: str
    ) -> "tuple[float, int, str, int] | None":
        """Cached ``(probability, node_count, ordering_used, n_modules)``.

        Keyed by the static tree's content digest plus the two knobs
        that select the compilation (the node budget and the requested
        ordering) — the quantification is a pure function of those.
        """
        payload = self._read(
            "bdd", self._bdd_key(digest, node_budget, ordering)
        )
        if payload is not None:
            probability = payload.get("probability")
            node_count = payload.get("node_count")
            used = payload.get("ordering")
            n_modules = payload.get("n_modules")
            if (
                isinstance(probability, float)
                and 0.0 <= probability <= 1.0
                and isinstance(node_count, int)
                and node_count >= 0
                and isinstance(used, str)
                and isinstance(n_modules, int)
                and n_modules >= 0
            ):
                self.bdd_hits += 1
                faults.check("cache_read", layer="bdd")
                probability = faults.corrupt(
                    "cache_value", probability, layer="bdd"
                )
                return (probability, node_count, used, n_modules)
            self.errors += 1
        self.bdd_misses += 1
        return None

    def put_bdd(
        self,
        digest: str,
        node_budget: "int | None",
        ordering: str,
        probability: float,
        node_count: int,
        ordering_used: str,
        n_modules: int,
    ) -> None:
        """Persist one exact static quantification."""
        if not (
            isinstance(probability, float)
            and 0.0 <= probability <= 1.0
            and node_count >= 0
        ):
            return  # never persist an implausible value
        self._write(
            "bdd",
            self._bdd_key(digest, node_budget, ordering),
            {
                "probability": probability,
                "node_count": int(node_count),
                "ordering": ordering_used,
                "n_modules": int(n_modules),
            },
        )

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def stats(self) -> dict[str, int]:
        """Counter snapshot for health lines and ``cache.*`` metrics."""
        return {
            "solve_hits": self.solve_hits,
            "solve_misses": self.solve_misses,
            "mocus_hits": self.mocus_hits,
            "mocus_misses": self.mocus_misses,
            "records_hits": self.records_hits,
            "records_misses": self.records_misses,
            "bdd_hits": self.bdd_hits,
            "bdd_misses": self.bdd_misses,
            "errors": self.errors,
            "evictions": self.evictions,
        }

    def summary(self) -> str:
        """One human-readable line for the run report."""
        parts = [
            f"cache: {self.solve_hits} solve hits / "
            f"{self.solve_misses} misses",
            f"mocus {self.mocus_hits}/{self.mocus_hits + self.mocus_misses}",
            f"records {self.records_hits}/"
            f"{self.records_hits + self.records_misses}",
        ]
        if self.bdd_hits or self.bdd_misses:
            parts.append(f"bdd {self.bdd_hits}/{self.bdd_hits + self.bdd_misses}")
        if self.errors:
            parts.append(f"{self.errors} errors (served as misses)")
        if self.evictions:
            parts.append(f"{self.evictions} evictions")
        return ", ".join(parts) + f" [{self.cache_dir}]"
