"""Performance layer: dedup + parallel execution of cutset solves.

The paper's decomposition turns one intractable product-chain analysis
into thousands of *independent* small per-cutset solves (Section V-C) —
a shape that parallelises and deduplicates embarrassingly well.  This
package supplies the mechanisms; :mod:`repro.core.analyzer` is the
policy layer that threads them through the pipeline:

* :mod:`repro.perf.fingerprint` — content-based structural signatures
  of chains and per-cutset models, valid across processes;
* :mod:`repro.perf.dedup` — group cutsets by model signature so each
  unique model is solved exactly once;
* :mod:`repro.perf.schedule` — order unique solves largest-first to
  minimise process-pool tail latency;
* :mod:`repro.perf.pool` — the process-pool solver farm with picklable
  task/result types and per-task fault capture.
"""

from repro.perf.dedup import DedupPlan, ModelGroup
from repro.perf.fingerprint import model_signature
from repro.perf.pool import SolveResult, SolveTask, SolverFarm, resolve_jobs, solve_task
from repro.perf.schedule import estimate_chain_states, order_largest_first

__all__ = [
    "DedupPlan",
    "ModelGroup",
    "SolveResult",
    "SolveTask",
    "SolverFarm",
    "estimate_chain_states",
    "model_signature",
    "order_largest_first",
    "resolve_jobs",
    "solve_task",
]
