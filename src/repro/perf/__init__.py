"""Performance layer: dedup + parallel execution of cutset solves.

The paper's decomposition turns one intractable product-chain analysis
into thousands of *independent* small per-cutset solves (Section V-C) —
a shape that parallelises and deduplicates embarrassingly well.  This
package supplies the mechanisms; :mod:`repro.core.analyzer` is the
policy layer that threads them through the pipeline:

* :mod:`repro.perf.fingerprint` — content-based structural signatures
  of chains and per-cutset models, valid across processes;
* :mod:`repro.perf.dedup` — group cutsets by model signature so each
  unique model is solved exactly once;
* :mod:`repro.perf.schedule` — order unique solves largest-first to
  minimise process-pool tail latency, and pack them into balanced
  batches so one IPC round-trip amortises many solves;
* :mod:`repro.perf.pool` — the process-pool solver farm with picklable
  task/result types, per-task fault capture, batched dispatch over a
  warm persistent pool, and a fork-inherited shared model table;
* :mod:`repro.perf.cache` — the persistent on-disk solve cache keyed
  by the fingerprint content hashes, making re-analysis of an
  unchanged model near-free.
"""

from repro.perf.cache import SolveCache, default_cache_dir, tree_digest
from repro.perf.dedup import DedupPlan, ModelGroup
from repro.perf.fingerprint import model_signature
from repro.perf.pool import (
    SolveBatch,
    SolveResult,
    SolveTask,
    SolverFarm,
    resolve_jobs,
    shutdown_warm_farm,
    solve_batch,
    solve_task,
    warm_farm,
)
from repro.perf.schedule import (
    estimate_chain_states,
    order_largest_first,
    plan_batches,
)

__all__ = [
    "DedupPlan",
    "ModelGroup",
    "SolveBatch",
    "SolveCache",
    "SolveResult",
    "SolveTask",
    "SolverFarm",
    "default_cache_dir",
    "estimate_chain_states",
    "model_signature",
    "order_largest_first",
    "plan_batches",
    "resolve_jobs",
    "shutdown_warm_farm",
    "solve_batch",
    "solve_task",
    "tree_digest",
    "warm_farm",
]
