"""Differential cross-checks: compute key quantities twice, independently.

Invariant guards (:mod:`repro.robust.verify`) catch values that are
*impossible*; this module catches values that are merely *wrong*.  In
``verify="full"`` mode the analyzer re-derives a sample of its own
answers through independent code paths and fails loudly — with
:class:`~repro.errors.CrosscheckError` — when the two derivations
disagree beyond floating-point slack.  The same cross-method-agreement
idea rare-event Monte-Carlo DFT estimators lean on to trust their
numbers, applied to the pipeline's own internals:

1. **Re-quantification** — a seeded sample of exactly-quantified
   dynamic cutsets is re-solved in-process with a fresh cache and
   compared against the recorded value.  This is the check that
   catches a corrupted pool result, a poisoned cache entry, or a
   fold bug: the pool and the serial loop promise bit-identical
   values, so any disagreement is a defect, not noise.
2. **BDD oracle** — the *exact* top probability from the BDD engine
   (:mod:`repro.bdd`) must sit inside the bracket the cutset path
   promises — ``largest single cutset <= exact <= rare-event sum`` —
   and the analysis cutset list must be a subset of the exact minimal
   cutsets (with every exact cutset above the cutoff present when the
   list was not budget-truncated).  Since the BDD became the
   production static engine this check runs *both ways*: it validates
   MOCUS against the BDD and the BDD against MOCUS on every model the
   node budget can compile — there is no event-count ceiling.
3. **Ladder-rung bracketing** — for sampled cutsets, the interval the
   ``bound`` rung would report must bracket the exact rung's value:
   adjacent ladder rungs agree, so a degraded answer elsewhere in the
   run is trustworthy.
4. **Rare-event statistical agreement** — a sampled exactly-quantified
   cutset is re-estimated through the rare-event Monte-Carlo engine
   (:mod:`repro.ctmc.rare`) and the uniformization value must fall
   inside the estimator's N-sigma interval.  Uniformization and the
   trajectory sampler share no numerics — this is the check that keeps
   validating the *dynamic* path the static BDD oracle cannot see,
   exactly the cross-method validation rare-event DFT tools use on
   themselves.

Checks are deterministic (the sample seed derives from the model name
and record count), side-effect free on results, and skip — with a
health note, never silently — when a precondition does not hold
(tree too large for the BDD oracle, re-solve fails under an armed
fault, nothing to sample).
"""

from __future__ import annotations

import math
import random
import zlib
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from repro.errors import AnalysisError, CrosscheckError, NumericalError

if TYPE_CHECKING:
    from repro.core.analyzer import AnalysisOptions
    from repro.core.quantify import McsQuantification
    from repro.core.sdft import SdFaultTree
    from repro.ft.mocus import MocusResult
    from repro.ft.tree import FaultTree
    from repro.obs.metrics import MetricsRegistry, NullMetrics
    from repro.robust.health import HealthLog

__all__ = ["CrosscheckSummary", "run_crosschecks"]

#: How many records the re-quantification pass re-solves.
RECHECK_SAMPLE = 5

#: How many records the ladder-rung bracket check covers.
BRACKET_SAMPLE = 3

#: Cap on the number of exact minimal cutsets the oracle materialises
#: as explicit sets (counted on the minimal-solutions BDD *before*
#: enumeration, so an explosive family skips cleanly instead of eating
#: memory).  The probability bracket still runs above the cap.
BDD_ORACLE_MAX_CUTSETS = 200_000

#: Relative agreement required between two solves of the same model.
RECHECK_RTOL = 1e-8

#: How many records the rare-event statistical check re-estimates.
MC_SAMPLE = 1

#: Acceptance band of the statistical check, in standard errors.  Wide
#: enough that a healthy estimator disagrees with probability < 1e-6;
#: a corrupted likelihood ratio overshoots it by orders of magnitude.
MC_SIGMAS = 5.0


@dataclass(frozen=True)
class CrosscheckSummary:
    """What the differential pass actually covered (for the health log)."""

    rechecked: int = 0
    bdd_checked: bool = False
    bracketed: int = 0
    skipped: tuple[str, ...] = ()
    mc_checked: int = 0

    def message(self) -> str:
        parts = [
            f"{self.rechecked} cutsets re-quantified",
            f"BDD oracle {'checked' if self.bdd_checked else 'skipped'}",
            f"{self.bracketed} ladder brackets verified",
            f"{self.mc_checked} rare-event estimates cross-checked",
        ]
        if self.skipped:
            parts.append(f"skipped: {'; '.join(self.skipped)}")
        return "crosscheck: " + ", ".join(parts)


def run_crosschecks(
    sdft: "SdFaultTree",
    mocus_tree: "FaultTree",
    mocus_result: "MocusResult",
    records: "Sequence[McsQuantification]",
    opts: "AnalysisOptions",
    health: "HealthLog",
    metrics: "MetricsRegistry | NullMetrics | None" = None,
) -> CrosscheckSummary:
    """Run every differential check; raise :class:`CrosscheckError` on disagreement.

    Called by the analyzer at the end of the quantification phase when
    ``verify="full"``.  Never mutates ``records``.  ``metrics``
    optionally receives the ``mc.*`` counters of the statistical check's
    rare-event runs.
    """
    rng = random.Random(
        zlib.crc32(
            f"{getattr(sdft, 'name', '')}\x00{len(records)}".encode()
        )
    )
    skipped: list[str] = []
    rechecked = _recheck_sample(sdft, records, opts, rng, skipped)
    bdd_checked = _bdd_oracle(mocus_tree, mocus_result, opts, skipped)
    bracketed = _bracket_sample(sdft, records, opts, rng, skipped)
    mc_checked = _rare_event_sample(sdft, records, opts, rng, skipped, metrics)
    summary = CrosscheckSummary(
        rechecked, bdd_checked, bracketed, tuple(skipped), mc_checked
    )
    health.info("verify", summary.message())
    return summary


# ----------------------------------------------------------------------
# 1. Re-quantification of a seeded sample
# ----------------------------------------------------------------------


def _exact_candidates(
    records: "Sequence[McsQuantification]",
) -> "list[McsQuantification]":
    return [
        r
        for r in records
        if r.is_dynamic
        and not r.bounded
        and not r.trivially_zero
        and r.rung in ("exact", "lumped")
    ]


def _recheck_sample(
    sdft: "SdFaultTree",
    records: "Sequence[McsQuantification]",
    opts: "AnalysisOptions",
    rng: random.Random,
    skipped: list[str],
) -> int:
    from repro.core.classify import classification_report
    from repro.core.quantify import QuantificationCache, quantify_cutset

    candidates = _exact_candidates(records)
    if not candidates:
        skipped.append("recheck: no exactly-quantified dynamic cutsets")
        return 0
    sample = rng.sample(candidates, min(RECHECK_SAMPLE, len(candidates)))
    classes = classification_report(sdft).by_gate
    checked = 0
    for record in sample:
        try:
            again = quantify_cutset(
                sdft,
                record.cutset,
                opts.horizon,
                classes=classes,
                cache=QuantificationCache(),
                epsilon=opts.epsilon,
                max_chain_states=opts.max_chain_states,
                on_oversize="raise",
                lump_chains=opts.lump_chains,
            )
        except (NumericalError, AnalysisError) as error:
            # The re-solve itself failed (e.g. an armed fault is still
            # tripping) — that is a *skip*, not a disagreement; the
            # original record already went through its own recovery.
            skipped.append(
                f"recheck of {'+'.join(sorted(record.cutset))} failed: {error}"
            )
            continue
        if not math.isclose(
            again.probability,
            record.probability,
            rel_tol=RECHECK_RTOL,
            abs_tol=1e-300,
        ):
            raise CrosscheckError(
                f"re-quantification disagrees for cutset "
                f"{'+'.join(sorted(record.cutset))}: recorded "
                f"{record.probability!r}, recomputed {again.probability!r}"
            )
        checked += 1
    return checked


# ----------------------------------------------------------------------
# 2. BDD oracle on small trees
# ----------------------------------------------------------------------


def _bdd_oracle(
    mocus_tree: "FaultTree",
    mocus_result: "MocusResult",
    opts: "AnalysisOptions",
    skipped: list[str],
) -> bool:
    """Differential check between the cutset path and the exact BDD.

    Compiles the static tree under the run's node budget (the only
    skip condition besides an unsupported structure — no event-count
    gate) and asserts the full soundness bracket:

    * ``largest single analysis cutset <= exact <= rare-event sum``
      over the exact MCS family — the bracket the served estimators
      (rare-event, min-cut UB) rely on;
    * the analysis cutset list is a subset of the exact minimal
      cutsets (MOCUS produced no spurious set);
    * every exact cutset above the cutoff appears in the analysis list
      when the search was not budget-truncated (MOCUS lost nothing the
      cutoff promised to keep).

    When the exact family is too large to materialise (counted on the
    minimal-solutions BDD first), the family comparisons are skipped
    with a note but the probability floor still runs.
    """
    from repro.bdd import compile_tree
    from repro.errors import BddBudgetExceeded
    from repro.ft.cutsets import cutset_probability

    node_budget = getattr(opts, "bdd_node_budget", 200_000)
    try:
        compiled = compile_tree(mocus_tree, node_budget=node_budget)
        exact_p = compiled.probability()
    except BddBudgetExceeded as error:
        skipped.append(f"BDD oracle: node budget tripped ({error})")
        return False
    except Exception as error:  # unsupported structure — skip, don't fail
        skipped.append(f"BDD oracle: compile failed ({error})")
        return False

    probabilities = {
        name: event.probability for name, event in mocus_tree.events.items()
    }
    analysis_sets = set(mocus_result.cutsets)
    slack = 1e-9 * max(1.0, exact_p)
    largest_analysis = max(
        (cutset_probability(c, probabilities) for c in analysis_sets),
        default=0.0,
    )
    if largest_analysis > exact_p + slack:
        raise CrosscheckError(
            f"the most likely analysis cutset ({largest_analysis!r}) exceeds "
            f"the exact BDD probability {exact_p!r} — a single cutset's "
            f"probability is a lower bound, so one of the two engines is wrong"
        )

    minsol_root = compiled.manager.minsol(compiled.root)
    n_exact = compiled.manager.count_paths(minsol_root)
    if n_exact > BDD_ORACLE_MAX_CUTSETS:
        skipped.append(
            f"BDD oracle: {n_exact} exact minimal cutsets "
            f"(> {BDD_ORACLE_MAX_CUTSETS}); family comparison skipped, "
            f"probability floor checked"
        )
        return True

    exact_family = compiled.minimal_cutsets()
    exact_sets = set(exact_family)
    full_sum = exact_family.rare_event()
    if exact_p > full_sum + 1e-9 * max(1.0, full_sum):
        raise CrosscheckError(
            f"exact BDD probability {exact_p!r} exceeds its own MCS "
            f"rare-event sum {full_sum!r} — the union bound is violated, "
            f"so the BDD engine or the MCS extraction is wrong"
        )
    if not analysis_sets <= exact_sets:
        spurious = analysis_sets - exact_sets
        raise CrosscheckError(
            f"the analysis cutset list contains {len(spurious)} cutsets "
            f"the exact BDD engine does not recognise as minimal"
        )
    if not mocus_result.truncated:
        cutoff = opts.cutoff * (1.0 + 1e-9)
        lost = [
            c
            for c in exact_sets - analysis_sets
            if cutset_probability(c, probabilities) > cutoff
        ]
        if lost:
            raise CrosscheckError(
                f"MOCUS lost {len(lost)} minimal cutsets above the cutoff "
                f"{opts.cutoff!r} that the exact BDD engine finds "
                f"(e.g. {'+'.join(sorted(lost[0]))})"
            )
    return True


# ----------------------------------------------------------------------
# 3. Adjacent ladder rungs bracket each other
# ----------------------------------------------------------------------


def _bracket_sample(
    sdft: "SdFaultTree",
    records: "Sequence[McsQuantification]",
    opts: "AnalysisOptions",
    rng: random.Random,
    skipped: list[str],
) -> int:
    from repro.core.classify import classification_report
    from repro.core.cutset_model import build_cutset_model
    from repro.core.quantify import bound_record

    candidates = _exact_candidates(records)
    if not candidates:
        skipped.append("bracket: no exactly-quantified dynamic cutsets")
        return 0
    sample = rng.sample(candidates, min(BRACKET_SAMPLE, len(candidates)))
    classes = classification_report(sdft).by_gate
    checked = 0
    for record in sample:
        try:
            model = build_cutset_model(sdft, record.cutset, classes)
            bound = bound_record(model, opts.horizon, opts.epsilon)
        except (NumericalError, AnalysisError) as error:
            skipped.append(
                f"bracket of {'+'.join(sorted(record.cutset))} failed: {error}"
            )
            continue
        lower = bound.lower_bound if bound.lower_bound is not None else 0.0
        slack = 1e-9 * max(1.0, bound.probability)
        if not (lower - slack <= record.probability <= bound.probability + slack):
            raise CrosscheckError(
                f"ladder rungs disagree for cutset "
                f"{'+'.join(sorted(record.cutset))}: exact value "
                f"{record.probability!r} outside the bound rung's interval "
                f"[{lower!r}, {bound.probability!r}]"
            )
        checked += 1
    return checked


# ----------------------------------------------------------------------
# 4. Rare-event Monte-Carlo agrees with uniformization
# ----------------------------------------------------------------------


def _rare_event_sample(
    sdft: "SdFaultTree",
    records: "Sequence[McsQuantification]",
    opts: "AnalysisOptions",
    rng: random.Random,
    skipped: list[str],
    metrics: "MetricsRegistry | NullMetrics | None",
) -> int:
    """Statistically re-estimate sampled exact records via simulation.

    The recorded (uniformization) value must land inside the rare-event
    estimator's ``MC_SIGMAS``-standard-error interval.  Unlike the BDD
    oracle this check has no size ceiling: the trajectory sampler never
    builds the product space, so it keeps validating at the scale the
    paper targets.
    """
    from repro.core.classify import classification_report
    from repro.core.cutset_model import build_cutset_model
    from repro.ctmc.rare import RareEventConfig, estimate_failure_probability

    candidates = _exact_candidates(records)
    if not candidates:
        skipped.append("mc: no exactly-quantified dynamic cutsets")
        return 0
    sample = rng.sample(candidates, min(MC_SAMPLE, len(candidates)))
    classes = classification_report(sdft).by_gate
    config = RareEventConfig(
        target_rel_error=opts.mc_target_rel_error,
        max_runs=opts.monte_carlo_runs,
        engine="auto",
    )
    checked = 0
    for record in sample:
        name = "+".join(sorted(record.cutset))
        try:
            model = build_cutset_model(sdft, record.cutset, classes)
        except (NumericalError, AnalysisError) as error:
            skipped.append(f"mc check of {name} failed: {error}")
            continue
        if model.model is None or model.trivially_zero:
            skipped.append(f"mc check of {name}: nothing dynamic to simulate")
            continue
        if model.static_factor <= 0.0:
            skipped.append(f"mc check of {name}: zero static factor")
            continue
        # The record's value is the dynamic reach probability times the
        # static factor; the simulator only sees the dynamic part.
        dynamic_exact = record.probability / model.static_factor
        seed = (
            opts.monte_carlo_seed + zlib.crc32(f"crosscheck\x00{name}".encode())
        ) % 2**32
        try:
            result = estimate_failure_probability(
                model.model, opts.horizon, config, seed=seed, metrics=metrics
            )
        except (NumericalError, AnalysisError) as error:
            skipped.append(f"mc check of {name} failed: {error}")
            continue
        lower, upper = result.interval(sigmas=MC_SIGMAS)
        if not (lower <= dynamic_exact <= upper):
            raise CrosscheckError(
                f"rare-event estimate disagrees for cutset {name}: "
                f"uniformization value {dynamic_exact!r} outside the "
                f"{result.engine} estimator's {MC_SIGMAS:g}-sigma interval "
                f"[{lower!r}, {upper!r}] (estimate {result.estimate!r}, "
                f"achieved rel. error {result.achieved_rel_error:.3g} "
                f"over {result.n_runs} runs)"
            )
        checked += 1
    return checked
