"""repro.robust — the resilience layer of the analysis pipeline.

Production-scale runs must survive what a research prototype may not:
an oversized per-cutset chain, a numerical failure deep in a solver, a
wall-clock deadline, a killed process.  This package provides the four
pieces the analyzer threads together:

* :mod:`repro.robust.budget` — cooperative wall-clock / state-count /
  cutset-count budgets raising a catchable
  :class:`~repro.errors.BudgetExceededError`;
* :mod:`repro.robust.ladder` — the per-cutset degradation ladder
  (full transient → lumped chain → Monte-Carlo → conservative bound);
* :mod:`repro.robust.checkpoint` — periodic snapshots of MOCUS frontier
  state and quantified records, enabling kill/resume;
* :mod:`repro.robust.health` — the structured run-health report that
  makes every degradation visible on the result;
* :mod:`repro.robust.faults` — deterministic fault injection for tests
  and chaos campaigns (exception *and* silent-value faults);
* :mod:`repro.robust.verify` — stage-boundary invariant guards
  (``AnalysisOptions(verify="cheap"|"full")``);
* :mod:`repro.robust.crosscheck` — differential verification: key
  quantities re-derived through independent code paths (``full`` mode);
* :mod:`repro.robust.chaos` — the seeded fault-schedule campaign runner
  behind ``sdft chaos``.

``budget``, ``faults``, ``health`` and ``verify`` are dependency-free
of :mod:`repro.core` and imported eagerly; ``ladder``, ``checkpoint``,
``crosscheck`` and ``chaos`` build *on* the core and are re-exported
lazily to avoid import cycles.
"""

from __future__ import annotations

from typing import Any

from repro.robust import faults
from repro.robust.budget import Budget
from repro.robust.health import HealthEvent, HealthLog, HealthReport
from repro.robust.verify import Verifier

__all__ = [
    "Budget",
    "CampaignReport",
    "CheckpointManager",
    "HealthEvent",
    "HealthLog",
    "HealthReport",
    "LadderOutcome",
    "Verifier",
    "faults",
    "quantify_with_ladder",
    "run_campaign",
    "run_crosschecks",
]

#: Lazily-resolved exports living in modules that import repro.core.
_LAZY = {
    "quantify_with_ladder": "repro.robust.ladder",
    "LadderOutcome": "repro.robust.ladder",
    "CheckpointManager": "repro.robust.checkpoint",
    "run_crosschecks": "repro.robust.crosscheck",
    "run_campaign": "repro.robust.chaos",
    "CampaignReport": "repro.robust.chaos",
}


def __getattr__(name: str) -> Any:
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)
