"""Checkpoint/resume for long analysis runs.

An industrial cutset list can take hours to generate and quantify; a
killed process should not throw that work away.  The analyzer
periodically snapshots its progress to a JSON file:

* during MOCUS — the frontier of partial cutsets plus the completed
  cutsets so far (phase ``"mocus"``);
* during quantification — the full cutset list plus every quantified
  record so far (phase ``"quantify"``).

A snapshot is tied to the exact analysis problem by a fingerprint of
the model structure, horizon and cutoff; resuming against a different
problem raises :class:`~repro.errors.CheckpointError` rather than
silently mixing results.  Writes are atomic (temp file + rename) so a
kill mid-write leaves the previous snapshot intact.

The quantification cache itself is *not* serialised — rebuilding it is
cheap relative to its size on disk — but every quantified record is,
which is the part that matters: on resume, already-quantified cutsets
are restored verbatim and only the remainder is solved.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import time
from pathlib import Path
from typing import TYPE_CHECKING, Callable

from repro.core.quantify import McsQuantification
from repro.errors import CheckpointError
from repro.robust import faults

if TYPE_CHECKING:
    from repro.core.sdft import SdFaultTree

__all__ = [
    "CheckpointManager",
    "model_fingerprint",
    "record_from_dict",
    "record_to_dict",
]

#: Format version; bump on incompatible layout changes.
FORMAT_VERSION = 1


def model_fingerprint(sdft: SdFaultTree, horizon: float, cutoff: float) -> str:
    """A stable digest of the analysis problem a checkpoint belongs to."""
    from repro.models.formats import sdft_to_dict

    payload = {
        "model": sdft_to_dict(sdft),
        "horizon": horizon,
        "cutoff": cutoff,
    }
    canonical = json.dumps(payload, sort_keys=True, default=str)
    return hashlib.sha256(canonical.encode()).hexdigest()


def record_to_dict(record: McsQuantification) -> dict:
    """JSON-serialisable form of one quantification record."""
    data = dataclasses.asdict(record)
    data["cutset"] = sorted(record.cutset)
    return data


def record_from_dict(data: dict) -> McsQuantification:
    """Inverse of :func:`record_to_dict`."""
    fields = dict(data)
    fields["cutset"] = frozenset(fields["cutset"])
    # JSON turns the tuple into a list; snapshots from before the field
    # existed simply lack it (such records are never reused anyway).
    fields["dependencies"] = tuple(fields.get("dependencies", ()))
    return McsQuantification(**fields)


class CheckpointManager:
    """Throttled, atomic snapshots of one analysis run.

    ``interval_seconds`` rate-limits :meth:`maybe_save` (``0`` =
    snapshot at every opportunity, which tests use); :meth:`save`
    always writes.  The manager never *reads* implicitly — call
    :meth:`load` explicitly to resume.
    """

    def __init__(
        self,
        path: str | Path,
        fingerprint: str,
        interval_seconds: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.path = Path(path)
        self.fingerprint = fingerprint
        self.interval_seconds = interval_seconds
        self._clock = clock
        self._last_saved: float | None = None
        self.saves = 0

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------

    def load(self) -> dict | None:
        """The validated snapshot payload, or ``None`` if none exists.

        Raises :class:`CheckpointError` when the file is unreadable,
        from an incompatible format version, or fingerprinted for a
        different model/horizon/cutoff.
        """
        if not self.path.exists():
            return None
        try:
            data = json.loads(self.path.read_text())
        except (OSError, ValueError) as error:
            raise CheckpointError(
                f"cannot read checkpoint {self.path}: {error}"
            ) from error
        if data.get("version") != FORMAT_VERSION:
            raise CheckpointError(
                f"checkpoint {self.path} has format version "
                f"{data.get('version')!r}, expected {FORMAT_VERSION}"
            )
        if data.get("fingerprint") != self.fingerprint:
            raise CheckpointError(
                f"checkpoint {self.path} was written for a different "
                f"model, horizon or cutoff; refusing to resume"
            )
        return data

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------

    def save(self, phase: str, state: dict) -> None:
        """Atomically write a snapshot for ``phase``."""
        faults.check("checkpoint", phase=phase)
        payload = {
            "version": FORMAT_VERSION,
            "fingerprint": self.fingerprint,
            "phase": phase,
            "state": state,
        }
        tmp = self.path.with_name(self.path.name + ".tmp")
        tmp.write_text(json.dumps(payload))
        os.replace(tmp, self.path)
        self._last_saved = self._clock()
        self.saves += 1

    def maybe_save(self, phase: str, state_fn: Callable[[], dict]) -> bool:
        """Write a snapshot if the throttle interval has elapsed.

        ``state_fn`` builds the (possibly large) state lazily so
        throttled calls cost nothing.  Returns whether a write happened.
        """
        now = self._clock()
        if (
            self._last_saved is not None
            and now - self._last_saved < self.interval_seconds
        ):
            return False
        self.save(phase, state_fn())
        return True

    def clear(self) -> None:
        """Remove the snapshot (called after a successful run)."""
        try:
            self.path.unlink()
        except FileNotFoundError:
            pass
