"""Structured run-health reporting.

A resilient pipeline that silently swaps exact solves for bounds would
be worse than a crashing one — a degraded answer must never be
indistinguishable from a clean one.  Every recovery action taken during
an analysis (a degradation-ladder retry, a budget hit, a substituted
bound, a numerical warning, a checkpoint resume) is recorded as a
:class:`HealthEvent`; the immutable :class:`HealthReport` rides on
:class:`~repro.core.results.AnalysisResult` and answers "can I trust
this number, and if not exactly, how wide is the slack?".
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["HealthEvent", "HealthReport", "HealthLog"]


#: Event kinds, in roughly increasing order of severity.
KIND_INFO = "info"
KIND_WARNING = "warning"
KIND_RETRY = "retry"
KIND_DEGRADATION = "degradation"
KIND_BUDGET = "budget"


@dataclass(frozen=True)
class HealthEvent:
    """One recovery action or anomaly observed during a run.

    ``kind`` is one of ``info`` / ``warning`` / ``retry`` /
    ``degradation`` / ``budget``; ``stage`` names the pipeline stage
    (``mocus``, ``quantify``, ``transient``, ``checkpoint``); ``cutset``
    identifies the affected cutset where applicable; ``rung`` the
    degradation-ladder rung that ultimately produced the value.
    """

    kind: str
    stage: str
    message: str
    cutset: tuple[str, ...] | None = None
    rung: str | None = None

    def __str__(self) -> str:
        where = f" [{'+'.join(self.cutset)}]" if self.cutset else ""
        via = f" via {self.rung}" if self.rung else ""
        return f"{self.kind}/{self.stage}{where}: {self.message}{via}"


@dataclass(frozen=True)
class HealthReport:
    """Immutable summary of every recovery action of one analysis run."""

    events: tuple[HealthEvent, ...] = ()

    @property
    def is_clean(self) -> bool:
        """Whether the run needed no recovery at all (infos allowed)."""
        return all(e.kind == KIND_INFO for e in self.events)

    @property
    def degradations(self) -> tuple[HealthEvent, ...]:
        """Cutsets answered by a fallback rung instead of the exact solve."""
        return tuple(e for e in self.events if e.kind == KIND_DEGRADATION)

    @property
    def retries(self) -> tuple[HealthEvent, ...]:
        """Failed attempts that were retried on a lower rung."""
        return tuple(e for e in self.events if e.kind == KIND_RETRY)

    @property
    def budget_hits(self) -> tuple[HealthEvent, ...]:
        """Budget exhaustions converted into partial results."""
        return tuple(e for e in self.events if e.kind == KIND_BUDGET)

    @property
    def warnings(self) -> tuple[HealthEvent, ...]:
        """Numerical or structural warnings that did not change results."""
        return tuple(e for e in self.events if e.kind == KIND_WARNING)

    def degraded_cutsets(self) -> frozenset[frozenset[str]]:
        """The set of cutsets whose value came from a fallback rung."""
        return frozenset(
            frozenset(e.cutset) for e in self.degradations if e.cutset is not None
        )

    def summary(self) -> str:
        """A short human-readable health digest."""
        if not self.events:
            return "run health: clean (no degradations, no budget hits)"
        lines = [
            "run health: "
            f"{len(self.degradations)} degradations, "
            f"{len(self.retries)} retries, "
            f"{len(self.budget_hits)} budget hits, "
            f"{len(self.warnings)} warnings"
        ]
        lines.extend(f"  {event}" for event in self.events)
        return "\n".join(lines)


@dataclass
class HealthLog:
    """Mutable event collector used while a run is in flight."""

    events: list[HealthEvent] = field(default_factory=list)

    def _record(
        self,
        kind: str,
        stage: str,
        message: str,
        cutset: frozenset[str] | None = None,
        rung: str | None = None,
    ) -> None:
        self.events.append(
            HealthEvent(
                kind,
                stage,
                message,
                tuple(sorted(cutset)) if cutset is not None else None,
                rung,
            )
        )

    def info(
        self,
        stage: str,
        message: str,
        cutset: frozenset[str] | None = None,
        rung: str | None = None,
    ) -> None:
        """Record a neutral fact (e.g. a checkpoint resume)."""
        self._record(KIND_INFO, stage, message, cutset=cutset, rung=rung)

    def warning(
        self,
        stage: str,
        message: str,
        cutset: frozenset[str] | None = None,
        rung: str | None = None,
    ) -> None:
        """Record an anomaly that did not change any result."""
        self._record(KIND_WARNING, stage, message, cutset=cutset, rung=rung)

    def retry(
        self,
        stage: str,
        message: str,
        cutset: frozenset[str] | None = None,
        rung: str | None = None,
    ) -> None:
        """Record a failed attempt that the ladder retried lower."""
        self._record(KIND_RETRY, stage, message, cutset=cutset, rung=rung)

    def degradation(
        self,
        stage: str,
        message: str,
        cutset: frozenset[str] | None = None,
        rung: str | None = None,
    ) -> None:
        """Record a value produced by a fallback rung."""
        self._record(KIND_DEGRADATION, stage, message, cutset=cutset, rung=rung)

    def budget(
        self,
        stage: str,
        message: str,
        cutset: frozenset[str] | None = None,
        rung: str | None = None,
    ) -> None:
        """Record a budget exhaustion converted to a partial result."""
        self._record(KIND_BUDGET, stage, message, cutset=cutset, rung=rung)

    def freeze(self) -> HealthReport:
        """The immutable report for the finished run."""
        return HealthReport(tuple(self.events))
