"""Seeded chaos campaigns: prove the pipeline fails loudly, never wrongly.

The resilience layer makes a strong promise: whatever breaks mid-run —
a solver failure, a silently corrupted value, a killed worker, a hung
task — an analysis either raises a typed :class:`~repro.errors.ReproError`
or returns a result whose reported interval still brackets the true
answer, with every deviation accounted for in the health report.  This
module *tests that promise against randomized adversity*: a campaign
runs the same model many times, each under a seeded random schedule of
injected faults (:mod:`repro.robust.faults`), and classifies every run:

* ``"clean"``   — the armed faults never tripped; the result is
  bit-identical to the clean reference run;
* ``"loud"``    — the run raised a typed :class:`ReproError` (an
  acceptable, honest failure);
* ``"bracketed"`` — the run returned a (degraded) result whose interval
  brackets the clean answer and whose cutset accounting is complete;
* ``"silent"``  — the run returned a result that is *wrong without
  saying so*: the interval misses the clean answer, or cutsets vanished
  from the accounting.  This is the outcome the whole robustness stack
  exists to make impossible; one of these fails the campaign.
* ``"contract"`` — the run escaped with an exception outside the
  :class:`ReproError` hierarchy (an API-contract break; also fails the
  campaign).

Fault schedules draw from exception faults (solver stages, MOCUS),
silent value corruptions (NaN, negative, over-unity, inflated — all
chosen to be *detectable* by the ``verify`` layer's invariants; a
sub-worst-case inflation can only be caught by ``verify="full"``
re-quantification and is deliberately not part of the campaign),
rare-event corruptions (a poisoned likelihood ratio and a silently
inflated estimate inside :mod:`repro.ctmc.rare`, each paired with a
persistent solver failure so the Monte-Carlo rung is actually reached),
persistent-cache faults (a NaN served from a prewarmed on-disk solve
cache, and a cache prewarmed at a *different horizon* whose stale
entries must miss, not serve) and — when ``jobs > 1`` —
process-level faults: a SIGKILLed worker and a hung task that the
farm's watchdog must reap.  Everything is deterministic in ``seed``;
campaigns are exposed as ``sdft chaos`` and run in CI.
"""

from __future__ import annotations

import json
import os
import signal
import tempfile
import time
from contextlib import (
    AbstractContextManager,
    ExitStack,
    contextmanager,
    nullcontext,
)
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Callable, Iterator

from repro.errors import AnalysisError, NumericalError, ReproError
from repro.robust import faults

if TYPE_CHECKING:
    import random

    from repro.core.analyzer import AnalysisOptions
    from repro.core.sdft import SdFaultTree

__all__ = ["CampaignReport", "RunOutcome", "run_campaign"]

#: Wall deadline given to the pool watchdog when the hang fault is armed.
_HANG_TIMEOUT_SECONDS = 0.5

#: How long the hung worker sleeps (must exceed the watchdog deadline).
_HANG_SECONDS = 2.0

#: Relative slack when testing whether an interval brackets the clean
#: answer (pure float accumulation differences).
_BRACKET_RTOL = 1e-9

#: Catalogue entries that need a prewarmed per-run cache directory.
_CACHE_FAULTS = frozenset({"nan@cache_value", "stale@cache_entry"})


@dataclass(frozen=True)
class RunOutcome:
    """Classification of one faulted analysis run."""

    run: int
    faults: tuple[str, ...]
    outcome: str  # "clean" | "loud" | "bracketed" | "silent" | "contract"
    detail: str
    probability: float | None = None
    interval: tuple[float, float] | None = None
    degraded_cutsets: int = 0

    @property
    def ok(self) -> bool:
        """Whether the run honoured the fail-loudly-or-bracket contract."""
        return self.outcome in ("clean", "loud", "bracketed")


@dataclass(frozen=True)
class CampaignReport:
    """Everything a chaos campaign observed, JSON-serialisable."""

    model: str
    runs: int
    seed: int
    jobs: int
    verify: str
    clean_probability: float
    clean_interval: tuple[float, float]
    clean_cutsets: int
    outcomes: tuple[RunOutcome, ...]
    elapsed_seconds: float

    @property
    def ok(self) -> bool:
        """Whether every run failed loudly or stayed bracketed."""
        return all(outcome.ok for outcome in self.outcomes)

    def counts(self) -> dict[str, int]:
        """Outcome histogram."""
        histogram: dict[str, int] = {}
        for outcome in self.outcomes:
            histogram[outcome.outcome] = histogram.get(outcome.outcome, 0) + 1
        return histogram

    def to_dict(self) -> dict:
        """Plain-data form for the JSON report."""
        return {
            "model": self.model,
            "runs": self.runs,
            "seed": self.seed,
            "jobs": self.jobs,
            "verify": self.verify,
            "clean_probability": self.clean_probability,
            "clean_interval": list(self.clean_interval),
            "clean_cutsets": self.clean_cutsets,
            "ok": self.ok,
            "counts": self.counts(),
            "elapsed_seconds": self.elapsed_seconds,
            "outcomes": [
                {
                    "run": o.run,
                    "faults": list(o.faults),
                    "outcome": o.outcome,
                    "detail": o.detail,
                    "probability": o.probability,
                    "interval": list(o.interval) if o.interval else None,
                    "degraded_cutsets": o.degraded_cutsets,
                }
                for o in self.outcomes
            ],
        }

    def to_json(self, indent: int = 2) -> str:
        """The JSON campaign report (``sdft chaos --report``)."""
        return json.dumps(self.to_dict(), indent=indent)

    def summary(self) -> str:
        """Human-readable campaign digest."""
        counts = self.counts()
        ordered = ", ".join(
            f"{counts[k]} {k}"
            for k in ("clean", "loud", "bracketed", "silent", "contract")
            if k in counts
        )
        lines = [
            f"chaos campaign: {self.runs} runs on {self.model!r} "
            f"(seed {self.seed}, jobs {self.jobs}, verify {self.verify})",
            f"clean answer: {self.clean_probability:.6e} over "
            f"{self.clean_cutsets} cutsets",
            f"outcomes: {ordered or 'none'}",
            f"verdict: {'OK — no silent corruption' if self.ok else 'FAILED'} "
            f"({self.elapsed_seconds:.1f}s)",
        ]
        for outcome in self.outcomes:
            if not outcome.ok:
                lines.append(
                    f"  run {outcome.run} [{', '.join(outcome.faults)}]: "
                    f"{outcome.outcome} — {outcome.detail}"
                )
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Fault catalogue
# ----------------------------------------------------------------------


def _worker_kill_once(latch_path: str) -> Callable[..., bool]:
    """A ``worker_kill`` predicate that SIGKILLs exactly one worker.

    The latch file is the cross-process "already done" flag: fork gives
    every worker its own copy of the armed fault, so an in-memory
    counter could not stop the second worker — the filesystem can.
    """

    def predicate(**_context: object) -> bool:
        if os.path.exists(latch_path):
            return False
        try:
            open(latch_path, "x").close()
        except FileExistsError:
            return False
        os.kill(os.getpid(), signal.SIGKILL)
        return False  # unreachable

    return predicate


def _worker_hang_once(parent_pid: int, latch_path: str) -> Callable[..., bool]:
    """A ``transient_solve`` predicate that stalls one worker.

    Sleeps past the pool watchdog's deadline in exactly one worker
    process (never in the parent, whose in-process recovery re-solve
    must stay fast), then reports "no fault" — the delay itself is the
    fault, and the watchdog must reap it.
    """

    def predicate(**_context: object) -> bool:
        if os.getpid() == parent_pid or os.path.exists(latch_path):
            return False
        try:
            open(latch_path, "x").close()
        except FileExistsError:
            return False
        time.sleep(_HANG_SECONDS)
        return False

    return predicate


@contextmanager
def _compound(*arms: "AbstractContextManager[object]") -> "Iterator[None]":
    """Arm several fault context managers as one catalogue entry.

    The rare-event corruptions only matter once a cutset actually
    reaches the simulation rung, so their entries pair the corruption
    with a persistent solver failure that forces the descent.
    """
    with ExitStack() as stack:
        for arm in arms:
            stack.enter_context(arm)
        yield


def _catalogue(
    rng: "random.Random", jobs: int, scratch_dir: str, run_index: int
) -> "list[tuple[str, Callable[[], object], bool]]":
    """The armable faults for one run: ``(name, arm_thunk, needs_timeout)``.

    ``arm_thunk`` returns the context manager to enter; randomness
    (repeat counts) is drawn from ``rng`` *now* so the schedule is fully
    determined before anything runs.
    """
    entries: "list[tuple[str, Callable[[], object], bool]]" = [
        (
            "numerical@transient_solve",
            lambda times=rng.randint(1, 3): faults.inject(
                "transient_solve",
                NumericalError("chaos: forced solver failure"),
                times=times,
            ),
            False,
        ),
        (
            "analysis@chain_build",
            lambda times=rng.randint(1, 2): faults.inject(
                "chain_build",
                AnalysisError("chaos: forced chain-build failure"),
                times=times,
            ),
            False,
        ),
        (
            "numerical@bound",
            lambda: faults.inject(
                "bound", NumericalError("chaos: forced bound failure"), times=1
            ),
            False,
        ),
        (
            "analysis@mocus",
            lambda: faults.inject(
                "mocus",
                AnalysisError("chaos: forced cutset-generation failure"),
                times=1,
            ),
            False,
        ),
        (
            "nan@solve_value",
            lambda times=rng.randint(1, 2): faults.inject_value(
                "solve_value", float("nan"), times=times
            ),
            False,
        ),
        (
            "negative@solve_value",
            lambda: faults.inject_value("solve_value", -0.5, times=1),
            False,
        ),
        (
            "overunity@solve_value",
            lambda: faults.inject_value("solve_value", 1.5, times=1),
            False,
        ),
        (
            "inflate@solve_value",
            # The inflation lands above 1.0 by construction, so the P1
            # invariant is guaranteed to see it (a sub-worst-case
            # inflation would be a genuinely silent corruption that only
            # full-mode re-quantification could sample).
            lambda: faults.inject_value(
                "solve_value", lambda p: p * 1e12 + 1.1, times=1
            ),
            False,
        ),
        (
            "nan@rare_weights",
            # A corrupted likelihood ratio poisons one rare-event batch;
            # the NaN must surface in the Monte-Carlo record for the P1
            # invariant (or the ladder's own accounting) to catch.
            lambda: _compound(
                faults.inject(
                    "transient_solve",
                    NumericalError("chaos: forced solver failure"),
                ),
                faults.inject_value(
                    "rare_event_weights",
                    lambda w: w * float("nan"),
                    times=1,
                ),
            ),
            False,
        ),
        (
            "inflate@rare_estimate",
            # Silent weight inflation: the estimate explodes while the
            # standard error stays sane, so the assembled interval comes
            # out inverted (lower above the unit-clipped upper) — the P3
            # interval-order guard's job.
            lambda: _compound(
                faults.inject(
                    "transient_solve",
                    NumericalError("chaos: forced solver failure"),
                ),
                faults.inject_value(
                    "rare_event_estimate",
                    lambda p: p * 1e12 + 1.1,
                    times=1,
                ),
            ),
            False,
        ),
        (
            "nan@cache_value",
            # A bit-rotted payload the sqlite layer could not catch: the
            # first solve-layer cache *read* of the run hands back NaN.
            # The verify invariants must flag it exactly like a NaN from
            # a live solve — a cached value gets no trust discount.  The
            # run's cache dir is prewarmed by a clean analysis first
            # (see run_campaign); writes stay disabled while armed, so
            # the corruption can never be persisted back.
            lambda: faults.inject_value(
                "cache_value", float("nan"), times=1
            ),
            False,
        ),
        (
            "stale@cache_entry",
            # No fault armed at all: the run's cache dir is prewarmed at
            # a *different horizon* (see run_campaign).  Every stale
            # entry must miss — a wrong serve would shift the answer and
            # classify "silent"; the correct full-miss run reproduces
            # the reference bit-for-bit and classifies "clean".
            lambda: nullcontext(),
            False,
        ),
    ]
    if jobs > 1:
        kill_latch = os.path.join(scratch_dir, f"kill-{run_index}.latch")
        hang_latch = os.path.join(scratch_dir, f"hang-{run_index}.latch")
        parent = os.getpid()
        entries.append(
            (
                "worker_kill@pool",
                lambda: faults.inject(
                    "worker_kill", when=_worker_kill_once(kill_latch)
                ),
                False,
            )
        )
        entries.append(
            (
                "hang@pool",
                lambda: faults.inject(
                    "transient_solve",
                    when=_worker_hang_once(parent, hang_latch),
                ),
                True,
            )
        )
    return entries


# ----------------------------------------------------------------------
# Campaign runner
# ----------------------------------------------------------------------


def run_campaign(
    sdft: "SdFaultTree",
    runs: int = 20,
    seed: int = 0,
    options: "AnalysisOptions | None" = None,
    verify: str = "cheap",
    jobs: "int | str" = 1,
) -> CampaignReport:
    """Run a seeded chaos campaign against ``sdft``.

    Analyzes the model once cleanly for the reference answer, then
    ``runs`` more times, each under 1–3 faults drawn deterministically
    from the catalogue, with fault isolation and the requested
    ``verify`` mode on.  Never raises for a *failing* campaign — the
    report's :attr:`~CampaignReport.ok` says whether the contract held.
    """
    import random

    from repro.core.analyzer import AnalysisOptions, analyze
    from repro.perf.pool import resolve_jobs
    from repro.robust.verify import resolve_mode

    if runs < 1:
        raise ValueError(f"runs must be >= 1, got {runs}")
    resolve_mode(verify)
    jobs = resolve_jobs(jobs)
    base = options if options is not None else AnalysisOptions(cutoff=1e-10)
    started = time.perf_counter()

    clean_opts = replace(base, fault_isolation=True, verify=verify, jobs=jobs)
    clean = analyze(sdft, clean_opts)
    if clean.is_degraded:
        raise AnalysisError(
            "chaos campaign needs a clean reference run, but the "
            "fault-free analysis already degraded; fix the model or "
            "budget first"
        )
    clean_probability = clean.failure_probability
    clean_interval = clean.failure_probability_interval()
    clean_cutsets = frozenset(record.cutset for record in clean.records)

    outcomes = []
    scratch_dir = tempfile.mkdtemp(prefix="sdft-chaos-")
    try:
        for run_index in range(runs):
            rng = random.Random(f"{seed}:{run_index}")
            entries = _catalogue(rng, jobs, scratch_dir, run_index)
            chosen = rng.sample(entries, rng.randint(1, min(3, len(entries))))
            run_opts = clean_opts
            if any(needs_timeout for _, _, needs_timeout in chosen):
                run_opts = replace(
                    run_opts,
                    pool_task_timeout_seconds=_HANG_TIMEOUT_SECONDS,
                )
            names = tuple(name for name, _, _ in chosen)
            if any(name in _CACHE_FAULTS for name in names):
                # The cache faults only bite when the faulted run has a
                # populated on-disk cache to read from.  Prewarm a
                # per-run directory with clean analyses *before* any
                # fault is armed: same-horizon entries for the
                # corrupted-read fault, different-horizon entries for
                # the staleness probe.
                run_opts = replace(
                    run_opts,
                    cache_dir=os.path.join(
                        scratch_dir, f"cache-{run_index}"
                    ),
                )
                if "nan@cache_value" in names:
                    analyze(sdft, run_opts)
                if "stale@cache_entry" in names:
                    analyze(
                        sdft,
                        replace(run_opts, horizon=run_opts.horizon * 2.0),
                    )
            outcomes.append(
                _one_run(
                    sdft,
                    run_index,
                    names,
                    [arm for _, arm, _ in chosen],
                    run_opts,
                    analyze,
                    clean_probability,
                    clean_cutsets,
                )
            )
    finally:
        faults.clear()
        _cleanup_dir(scratch_dir)

    return CampaignReport(
        model=getattr(sdft, "name", None) or "",
        runs=runs,
        seed=seed,
        jobs=jobs,
        verify=verify,
        clean_probability=clean_probability,
        clean_interval=clean_interval,
        clean_cutsets=len(clean_cutsets),
        outcomes=tuple(outcomes),
        elapsed_seconds=time.perf_counter() - started,
    )


def _one_run(
    sdft: "SdFaultTree",
    run_index: int,
    names: tuple[str, ...],
    arms: "list[Callable[[], object]]",
    run_opts: "AnalysisOptions",
    analyze_fn: Callable,
    clean_probability: float,
    clean_cutsets: frozenset,
) -> RunOutcome:
    """Execute one faulted analysis and classify its outcome."""
    try:
        with ExitStack() as stack:
            for arm in arms:
                stack.enter_context(arm())
            result = analyze_fn(sdft, run_opts)
    except ReproError as error:
        return RunOutcome(
            run_index,
            names,
            "loud",
            f"{type(error).__name__}: {error}",
        )
    except Exception as error:  # the contract break the campaign hunts
        return RunOutcome(
            run_index,
            names,
            "contract",
            f"escaped with non-Repro exception "
            f"{type(error).__name__}: {error}",
        )

    lower, upper = result.failure_probability_interval()
    slack = _BRACKET_RTOL * max(1.0, clean_probability)
    bracketed = lower - slack <= clean_probability <= upper + slack
    accounted = (
        frozenset(record.cutset for record in result.records) == clean_cutsets
    )
    degraded = len(result.health.degraded_cutsets())
    if not accounted:
        return RunOutcome(
            run_index,
            names,
            "silent",
            f"cutset accounting changed: {len(result.records)} records vs "
            f"{len(clean_cutsets)} clean cutsets",
            result.failure_probability,
            (lower, upper),
            degraded,
        )
    if not bracketed:
        return RunOutcome(
            run_index,
            names,
            "silent",
            f"interval [{lower:.6e}, {upper:.6e}] does not bracket the "
            f"clean answer {clean_probability:.6e}",
            result.failure_probability,
            (lower, upper),
            degraded,
        )
    if (
        result.failure_probability == clean_probability
        and not result.is_degraded
    ):
        return RunOutcome(
            run_index,
            names,
            "clean",
            "faults armed but never tripped; result identical to reference",
            result.failure_probability,
            (lower, upper),
            0,
        )
    return RunOutcome(
        run_index,
        names,
        "bracketed",
        f"degraded on {degraded} cutset(s); interval brackets the clean "
        f"answer",
        result.failure_probability,
        (lower, upper),
        degraded,
    )


def _cleanup_dir(path: str) -> None:
    """Best-effort removal of the campaign's latch-file scratch dir."""
    import shutil

    shutil.rmtree(path, ignore_errors=True)


def _iter_outcomes(report: CampaignReport) -> Iterator[RunOutcome]:
    """Convenience for callers that stream outcomes (tests)."""
    yield from report.outcomes
