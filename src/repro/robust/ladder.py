"""The per-cutset degradation ladder.

The paper's pipeline quantifies thousands of per-cutset chains
independently (Section V–VI) — which means a failure in one of them
should cost exactly one cutset's precision, never the whole run.  When
the exact solve of a cutset fails (oversized chain, numerical trouble,
budget pressure), the ladder retries that one cutset down a chain of
cheaper strategies, in order:

1. ``exact``       — full product chain + transient solve
   (:func:`repro.core.quantify.quantify_model`);
2. ``lumped``      — the same solve on the exactly-lumped chain
   (:mod:`repro.ctmc.lumping`) — smaller and often better conditioned;
3. ``monte_carlo`` — simulation of the cutset's ``FT_C`` through the
   rare-event controller (:mod:`repro.ctmc.rare`): crude sampling for
   common events, failure-biased importance sampling or importance
   splitting for PSA-scale probabilities, reported as a confidence
   interval; never builds the product state space;
4. ``bound``       — the conservative interval of
   :mod:`repro.core.bounds` (the paper's Section VIII approximation),
   one tiny single-chain solve per dynamic event.

Every descent is recorded so the health report can enumerate it, and
any rung below ``exact`` widens the reported value into an interval
(``bounded`` + ``lower_bound`` on the record) — a degraded answer is
visible, bracketed, and never silently exact-looking.
"""

from __future__ import annotations

import time
import zlib
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.cutset_model import CutsetModel, build_cutset_model
from repro.core.quantify import (
    McsQuantification,
    QuantificationCache,
    bound_record,
    quantify_model,
)
from repro.core.sdft import SdFaultTree
from repro.errors import AnalysisError, BudgetExceededError, NumericalError
from repro.robust import faults
from repro.robust.budget import Budget

if TYPE_CHECKING:
    from repro.core.classify import TriggerClass
    from repro.obs.core import Observability

__all__ = ["LadderAttempt", "LadderOutcome", "quantify_with_ladder"]

#: Errors a rung may fail with that justify descending to the next one.
_RECOVERABLE = (NumericalError, AnalysisError)


@dataclass(frozen=True)
class LadderAttempt:
    """One failed rung: which strategy, and why it failed."""

    rung: str
    error: str


@dataclass(frozen=True)
class LadderOutcome:
    """The record that survived plus the descent that produced it."""

    record: McsQuantification
    rung: str
    attempts: tuple[LadderAttempt, ...] = ()
    #: Rung-specific detail for the health report (e.g. which rare-event
    #: engine ran and the relative error it actually achieved).
    note: str = ""

    @property
    def degraded(self) -> bool:
        """Whether any rung below the first was needed."""
        return bool(self.attempts)


def quantify_with_ladder(
    sdft: SdFaultTree,
    cutset: frozenset[str],
    horizon: float,
    classes: dict[str, TriggerClass] | None = None,
    cache: QuantificationCache | None = None,
    epsilon: float = 1e-12,
    max_chain_states: int = 200_000,
    lump_chains: bool = False,
    budget: Budget | None = None,
    monte_carlo_runs: int = 4_000,
    monte_carlo_seed: int = 0,
    monte_carlo_target_rel_error: float = 0.10,
    monte_carlo_engine: str = "auto",
    obs: Observability | None = None,
) -> LadderOutcome:
    """Quantify one cutset, degrading through the ladder on failure.

    Raises only when *every* rung fails (the analyzer then substitutes
    the cutset's static worst-case bound) or when model construction
    itself fails.  ``monte_carlo_seed`` is mixed with a stable hash of
    the cutset so fallback simulations are reproducible per cutset yet
    independent across cutsets; ``monte_carlo_engine`` and
    ``monte_carlo_target_rel_error`` select and tune the rare-event
    estimator of the simulation rung (``monte_carlo_runs`` caps its
    total trajectories).  ``obs`` optionally records the ``ladder.*``
    counters (descents, failed rungs, final rung) and is threaded into
    the exact solves for their spans.
    """
    model = build_cutset_model(sdft, cutset, classes)

    attempts: list[LadderAttempt] = []

    def _outcome(
        record: McsQuantification, rung: str, note: str = ""
    ) -> LadderOutcome:
        if obs is not None:
            metrics = obs.metrics
            metrics.count(f"ladder.rung.{rung}")
            if attempts:
                metrics.count("ladder.descents")
                metrics.count("ladder.attempts_failed", len(attempts))
        return LadderOutcome(record, rung, tuple(attempts), note)

    def _exact(lumped: bool) -> McsQuantification:
        return quantify_model(
            model,
            horizon,
            cache,
            epsilon,
            max_chain_states,
            on_oversize="raise",
            lump_chains=lumped,
            budget=budget,
            obs=obs,
        )

    # Rung 1: the solve as configured.
    first_rung = "lumped" if lump_chains else "exact"
    try:
        record = _exact(lump_chains)
        return _outcome(record, record.rung)
    except _RECOVERABLE as error:
        attempts.append(LadderAttempt(first_rung, str(error)))

    # Rung 2: retry on the exactly-lumped chain (skip if rung 1 already
    # lumped).  Helps with numerical trouble and state budgets; an
    # oversized product fails here too and falls through.
    if not lump_chains:
        try:
            record = _exact(True)
            return _outcome(record, "lumped")
        except _RECOVERABLE as error:
            attempts.append(LadderAttempt("lumped", str(error)))

    # Rung 3: Monte-Carlo on FT_C — no product state space at all.
    # Pointless once the wall clock is gone; the bound rung is cheaper.
    if not (budget is not None and budget.expired()):
        try:
            record, note = _monte_carlo(
                model,
                horizon,
                monte_carlo_runs,
                monte_carlo_seed,
                monte_carlo_target_rel_error,
                monte_carlo_engine,
                budget,
                obs,
            )
            return _outcome(record, "monte_carlo", note)
        except _RECOVERABLE as error:
            attempts.append(LadderAttempt("monte_carlo", str(error)))
    else:
        attempts.append(
            LadderAttempt("monte_carlo", "skipped: wall-clock budget exhausted")
        )

    # Rung 4: the conservative interval bound — tiny per-event solves.
    record = bound_record(model, horizon, epsilon)
    return _outcome(record, "bound")


def _monte_carlo(
    model: CutsetModel,
    horizon: float,
    n_runs: int,
    seed: int,
    target_rel_error: float,
    engine: str,
    budget: Budget | None,
    obs: Observability | None,
) -> tuple[McsQuantification, str]:
    """Simulate the cutset's ``FT_C`` and report a generous interval.

    Delegates to the adaptive rare-event controller — crude sampling
    for events common enough to tally directly, importance sampling or
    splitting at PSA probabilities — and reports the estimator's
    4-standard-error interval (the acceptance band of the simulator's
    own ``consistent_with`` cross-checks).  Returns the record plus a
    health-report note naming the engine used and the relative error it
    actually achieved.
    """
    faults.check("monte_carlo", cutset=model.cutset)
    if model.model is None or model.trivially_zero:
        # Static / infeasible cutsets never reach the ladder's lower
        # rungs in practice; quantify them exactly for completeness.
        return quantify_model(model, horizon), ""
    from repro.ctmc.rare import RareEventConfig, estimate_failure_probability

    mixed_seed = (seed + zlib.crc32("+".join(sorted(model.cutset)).encode())) % 2**32
    config = RareEventConfig(
        target_rel_error=target_rel_error, max_runs=n_runs, engine=engine
    )
    started = time.perf_counter()
    result = estimate_failure_probability(
        model.model,
        horizon,
        config,
        seed=mixed_seed,
        budget=budget,
        metrics=obs.metrics if obs is not None else None,
    )
    lower, upper = result.interval(sigmas=4.0)
    note = (
        f"engine={result.engine} runs={result.n_runs} "
        f"achieved_rel_error={result.achieved_rel_error:.3g} "
        f"target={result.target_rel_error:.3g}"
        + ("" if result.converged else " (budget hit before target)")
    )
    record = McsQuantification(
        model.cutset,
        upper * model.static_factor,
        True,
        model.n_dynamic_in_cutset,
        model.n_dynamic_in_model,
        model.n_added_dynamic,
        0,
        time.perf_counter() - started,
        bounded=True,
        lower_bound=lower * model.static_factor,
        rung="monte_carlo",
    )
    return record, note
