"""Deterministic fault injection for resilience testing.

The degradation ladder and the budget layer exist to survive solver
failures — but real failures (an ill-conditioned chain, an exploding
product space) are hard to conjure on demand in a test.  This module
provides the built-in hook: production code calls :func:`check` at each
failure-prone stage, which is a near-free no-op unless a test has armed
a fault for that stage with :func:`inject`.

Stages wired into the pipeline:

* ``"chain_build"``    — before building a cutset's product chain,
* ``"transient_solve"`` — before the transient/first-passage solve,
* ``"lump"``           — before lumping a chain,
* ``"monte_carlo"``    — before the Monte-Carlo fallback rung,
* ``"bound"``          — before the interval-bound fallback rung,
* ``"mocus"``          — inside the MOCUS expansion loop,
* ``"checkpoint"``     — before writing a checkpoint snapshot,
* ``"worker_kill"``    — inside a pool worker, before it starts solving
  (process-level faults: a ``when`` predicate may ``os.kill`` the
  worker to simulate a hard crash — see :mod:`repro.robust.chaos`),
* ``"cache_read"``     — on a persistent solve-cache hit, before the
  cached value is served (:mod:`repro.perf.cache`).

Besides raising, a fault can silently *corrupt a value*: production
code passes candidate results through :func:`corrupt`, and a test (or a
chaos campaign) arms a replacement with :func:`inject_value` — e.g.
swap a solved probability for ``NaN`` at the ``"solve_value"`` stage to
prove the verification layer catches it.  Value stages wired in:

* ``"solve_value"`` — the dynamic reachability probability of one
  cutset model, right after the transient solve (both the in-process
  path and the pool worker).
* ``"rare_event_weights"`` — the per-trajectory weighted contributions
  of one rare-event Monte-Carlo batch (:mod:`repro.ctmc.rare`), before
  they enter the running tally — a corrupted likelihood ratio.
* ``"rare_event_estimate"`` — the rare-event engine's final point
  estimate, before the interval is assembled — silent weight
  inflation, the failure mode the interval-order guard must catch.
* ``"cache_value"`` — a probability served from the persistent solve
  cache (:mod:`repro.perf.cache`), after validation — an
  on-disk entry that rotted *after* passing the read-time checks.

The persistent cache additionally refuses to **write** any entry while
any fault is armed (see :func:`any_armed`), so a chaos campaign can
never leak a corrupted value into later, un-faulted runs.

Usage in tests::

    with faults.inject("transient_solve", NumericalError("forced")):
        result = analyze(sdft, options)   # first solve fails, ladder degrades

    with faults.inject_value("solve_value", float("nan"), times=1):
        result = analyze(sdft, options)   # verify layer must catch the NaN

``times`` limits how many calls trip (default: every call while armed);
``when`` optionally gates on the call's context (e.g. only a specific
cutset).  Injection state is process-global and **not** thread-safe —
it is a test facility, not a production feature.  Armed faults are
inherited by forked pool workers, which is exactly what lets one test
fault serial and parallel runs identically.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, Iterator, TypeVar, cast

from repro.errors import InjectedFaultError

_T = TypeVar("_T")

__all__ = [
    "any_armed",
    "check",
    "clear",
    "corrupt",
    "inject",
    "inject_value",
    "trip_count",
]


class _Fault:
    """One armed fault: what to raise, how often, and for which calls."""

    def __init__(
        self,
        error: BaseException | type[BaseException],
        times: int | None,
        when: Callable[..., bool] | None,
    ) -> None:
        self.error = error
        self.remaining = times
        self.when = when
        self.trips = 0

    def should_trip(self, context: dict[str, object]) -> bool:
        if self.remaining is not None and self.remaining <= 0:
            return False
        if self.when is not None and not self.when(**context):
            return False
        return True

    def trip(self) -> BaseException:
        self.trips += 1
        if self.remaining is not None:
            self.remaining -= 1
        if isinstance(self.error, BaseException):
            return self.error
        return self.error(f"injected fault (trip {self.trips})")


#: Armed faults by stage name.  Kept empty in production; the fast path
#: of :func:`check` is a single falsy-dict test.
_armed: dict[str, list[_Fault]] = {}


def check(stage: str, **context: object) -> None:
    """Raise the armed fault for ``stage``, if any.  No-op otherwise.

    ``context`` keywords (e.g. ``cutset=...``) are passed to the fault's
    ``when`` predicate so tests can target specific work items.
    """
    if not _armed:
        return
    for fault in _armed.get(stage, ()):
        if fault.should_trip(context):
            raise fault.trip()


@contextmanager
def inject(
    stage: str,
    error: BaseException | type[BaseException] = InjectedFaultError,
    times: int | None = None,
    when: Callable[..., bool] | None = None,
) -> Iterator[_Fault]:
    """Arm a fault for ``stage`` within the ``with`` block.

    ``error`` may be an exception instance (raised as-is on every trip)
    or a class (instantiated per trip).  ``times=N`` trips only the
    first ``N`` matching calls — e.g. ``times=1`` makes the exact rung
    fail once and lets the retry rung succeed.  The yielded handle
    exposes ``trips`` for assertions.
    """
    fault = _Fault(error, times, when)
    _armed.setdefault(stage, []).append(fault)
    try:
        yield fault
    finally:
        stack = _armed.get(stage, [])
        if fault in stack:
            stack.remove(fault)
        if not stack:
            _armed.pop(stage, None)


class _ValueFault:
    """One armed value corruption: the replacement, how often, for whom."""

    def __init__(
        self,
        replacement: object,
        times: int | None,
        when: Callable[..., bool] | None,
    ) -> None:
        self.replacement = replacement
        self.remaining = times
        self.when = when
        self.trips = 0

    def should_trip(self, context: dict[str, object]) -> bool:
        if self.remaining is not None and self.remaining <= 0:
            return False
        if self.when is not None and not self.when(**context):
            return False
        return True

    def trip(self, value: object) -> object:
        self.trips += 1
        if self.remaining is not None:
            self.remaining -= 1
        if callable(self.replacement):
            return self.replacement(value)
        return self.replacement


#: Armed value corruptions by stage name (same lifecycle as ``_armed``).
_armed_values: dict[str, list[_ValueFault]] = {}


def corrupt(stage: str, value: _T, **context: object) -> _T:
    """Return ``value``, or its armed replacement for ``stage``.

    The value-returning sibling of :func:`check`: production code passes
    candidate results through and receives them back unchanged unless a
    test armed a corruption with :func:`inject_value`.  The fast path is
    a single falsy-dict test.  (The replacement is *declared* to share
    the genuine value's type — arming a mistyped replacement is the
    test's own deliberate corruption.)
    """
    if not _armed_values:
        return value
    for fault in _armed_values.get(stage, ()):
        if fault.should_trip(context):
            return cast(_T, fault.trip(value))
    return value


@contextmanager
def inject_value(
    stage: str,
    replacement: object,
    times: int | None = None,
    when: Callable[..., bool] | None = None,
) -> Iterator[_ValueFault]:
    """Arm a silent value corruption for ``stage`` within the block.

    ``replacement`` may be a plain value (substituted as-is) or a
    callable receiving the genuine value (e.g. ``lambda p: p * 1e12``).
    This simulates the failure mode the verification layer exists for:
    a *silently wrong* number, with no exception anywhere near it.
    """
    fault = _ValueFault(replacement, times, when)
    _armed_values.setdefault(stage, []).append(fault)
    try:
        yield fault
    finally:
        stack = _armed_values.get(stage, [])
        if fault in stack:
            stack.remove(fault)
        if not stack:
            _armed_values.pop(stage, None)


def any_armed() -> bool:
    """Whether any fault (exception or value) is currently armed.

    Used by side-effecting layers that must not persist state produced
    under injection — notably the persistent solve cache, which treats
    an armed process as untrustworthy and skips all writes.
    """
    return bool(_armed or _armed_values)


def clear() -> None:
    """Disarm every fault (safety net for test teardown)."""
    _armed.clear()
    _armed_values.clear()


def trip_count(stage: str) -> int:
    """Total trips of the currently armed faults for ``stage``."""
    return sum(fault.trips for fault in _armed.get(stage, ())) + sum(
        fault.trips for fault in _armed_values.get(stage, ())
    )
