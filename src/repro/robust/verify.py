"""Stage-boundary invariant guards: the pipeline checks its own output.

The analysis trades one global product CTMC for thousands of small
per-cutset solves summed under the rare-event approximation — which
means a single silently-wrong solve (a NaN out of uniformization, a
poisoned cache entry, a pool task whose value was corrupted in flight)
would corrupt the final number without any error being raised.  This
module makes the wrongness *loud*: cheap mathematical invariants are
asserted at every stage boundary, and a failure raises
:class:`~repro.errors.InvariantViolation` instead of letting garbage
propagate.

The invariant catalogue (see ``docs/robustness.md``):

* **P1 — probabilities are probabilities**: every probability the
  pipeline produces is finite and within ``[0, 1]`` (up to a tiny
  floating-point tolerance).
* **P2 — distributions conserve mass**: a transient distribution is
  entrywise non-negative and sums to ``1 ± tol``.
* **P3 — intervals are ordered**: every reported interval satisfies
  ``lower <= estimate <= upper``.
* **P4 — worst-case dominance**: an exactly-quantified cutset's
  ``p̃(C)`` never exceeds its static worst-case value ``p̄(C)``
  (inequality (1) of the paper) — the check that catches a silently
  *inflated* solve.

Modes (``AnalysisOptions(verify=...)``, CLI ``--verify``):

* ``"off"``   — no checks (the default; zero overhead);
* ``"cheap"`` — the per-record and stage-boundary invariants above
  (pure-Python arithmetic, negligible next to any chain solve);
* ``"full"``  — additionally the differential cross-checks of
  :mod:`repro.robust.crosscheck`.

Verification **never changes a result** — a violation either raises or,
under fault isolation, routes the affected cutset through the existing
conservative degradation path with a health event saying so.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Callable, Iterable

from repro.errors import InvariantViolation

if TYPE_CHECKING:
    from repro.core.quantify import McsQuantification
    from repro.obs.metrics import MetricsRegistry, NullMetrics
    from repro.robust.health import HealthLog

__all__ = [
    "MODES",
    "Verifier",
    "check_distribution",
    "check_interval",
    "check_probability",
    "resolve_mode",
]

#: Valid verification modes, in increasing order of thoroughness.
MODES = ("off", "cheap", "full")

#: Slack for pure floating-point comparisons (range and ordering).
DEFAULT_TOLERANCE = 1e-9

#: Slack for probability-mass conservation of transient distributions:
#: the solver's own truncation error compounds over the series, so mass
#: checks are looser than ordering checks.
MASS_TOLERANCE = 1e-6


def resolve_mode(mode: str) -> str:
    """Validate a verify mode string (fail fast on typos)."""
    if mode not in MODES:
        raise ValueError(
            f"unknown verify mode {mode!r}; expected one of {MODES}"
        )
    return mode


def check_probability(
    value: float, what: str, tolerance: float = DEFAULT_TOLERANCE
) -> None:
    """Invariant P1: ``value`` is a finite probability in ``[0, 1]``."""
    if not math.isfinite(value):
        raise InvariantViolation(f"{what} is not finite: {value!r}")
    if value < -tolerance or value > 1.0 + tolerance:
        raise InvariantViolation(
            f"{what} is outside [0, 1]: {value!r}"
        )


def check_distribution(
    entries: Iterable[float],
    what: str,
    tolerance: float = MASS_TOLERANCE,
) -> None:
    """Invariant P2: a distribution is non-negative and sums to one.

    Accepts any iterable of floats (a numpy vector included); runs in
    one pass.  (:mod:`repro.ctmc.transient` carries its own vectorised
    always-on twin of this check, raising
    :class:`~repro.errors.NumericalError` there so the degradation
    ladder applies.)
    """
    total = 0.0
    for i, value in enumerate(entries):
        if not math.isfinite(value):
            raise InvariantViolation(
                f"{what} has a non-finite entry at index {i}: {value!r}"
            )
        if value < -tolerance:
            raise InvariantViolation(
                f"{what} has a negative entry at index {i}: {value!r}"
            )
        total += value
    if abs(total - 1.0) > tolerance:
        raise InvariantViolation(
            f"{what} does not conserve probability mass: sums to "
            f"{total!r} (drift {total - 1.0:.3e}, tolerance {tolerance:g})"
        )


def check_interval(
    lower: float,
    estimate: float,
    upper: float,
    what: str,
    tolerance: float = DEFAULT_TOLERANCE,
) -> None:
    """Invariant P3: ``lower <= estimate <= upper`` (with float slack).

    The slack scales with the magnitudes involved so intervals around
    sums of many cutsets are not failed for accumulated rounding.
    """
    for name, value in (("lower", lower), ("estimate", estimate), ("upper", upper)):
        if not math.isfinite(value):
            raise InvariantViolation(
                f"{what}: interval {name} is not finite: {value!r}"
            )
    slack = tolerance * max(1.0, abs(lower), abs(estimate), abs(upper))
    if lower > estimate + slack or estimate > upper + slack:
        raise InvariantViolation(
            f"{what}: interval out of order: "
            f"lower={lower!r} estimate={estimate!r} upper={upper!r}"
        )


class Verifier:
    """The per-run invariant checker the analyzer threads through.

    Holds the mode, the tolerance, and counters (``checks`` /
    ``violations``) that are mirrored into the run's metrics registry
    and summarised in the health report.  All ``check_*`` methods raise
    :class:`~repro.errors.InvariantViolation` on failure;
    :meth:`record_violation` is the non-raising variant the analyzer
    uses where a violation should degrade one cutset instead of
    aborting the run.
    """

    def __init__(
        self,
        mode: str = "off",
        health: "HealthLog | None" = None,
        metrics: "MetricsRegistry | NullMetrics | None" = None,
        tolerance: float = DEFAULT_TOLERANCE,
    ) -> None:
        self.mode = resolve_mode(mode)
        self.health = health
        self.metrics = metrics
        self.tolerance = tolerance
        self.checks = 0
        self.violations = 0

    @property
    def enabled(self) -> bool:
        """Whether any checking happens at all."""
        return self.mode != "off"

    @property
    def full(self) -> bool:
        """Whether the differential cross-checks run too."""
        return self.mode == "full"

    # ------------------------------------------------------------------
    # Bookkeeping
    # ------------------------------------------------------------------

    def _count(self, outcome_ok: bool) -> None:
        self.checks += 1
        if not outcome_ok:
            self.violations += 1
        if self.metrics is not None:
            self.metrics.count("verify.checks")
            if not outcome_ok:
                self.metrics.count("verify.violations")

    def _guard(self, check: Callable[[], None]) -> None:
        """Run one raising check with counter bookkeeping."""
        try:
            check()
        except InvariantViolation:
            self._count(False)
            raise
        self._count(True)

    # ------------------------------------------------------------------
    # Raising checks (stage boundaries)
    # ------------------------------------------------------------------

    def check_probability(self, value: float, what: str) -> None:
        """Raise unless ``value`` is a finite probability (P1)."""
        if not self.enabled:
            return
        self._guard(lambda: check_probability(value, what, self.tolerance))

    def check_value(self, value: float, what: str) -> None:
        """Raise unless ``value`` is finite and non-negative.

        For quantities that are sums of probabilities and may therefore
        legitimately exceed one (the rare-event sum, remainder bounds).
        """
        if not self.enabled:
            return

        def _check() -> None:
            if not math.isfinite(value):
                raise InvariantViolation(f"{what} is not finite: {value!r}")
            if value < -self.tolerance:
                raise InvariantViolation(f"{what} is negative: {value!r}")

        self._guard(_check)

    def check_interval(
        self, lower: float, estimate: float, upper: float, what: str
    ) -> None:
        """Raise unless ``lower <= estimate <= upper`` (P3)."""
        if not self.enabled:
            return
        self._guard(
            lambda: check_interval(lower, estimate, upper, what, self.tolerance)
        )

    # ------------------------------------------------------------------
    # Non-raising checks (the analyzer degrades / recovers instead)
    # ------------------------------------------------------------------

    def value_violation(self, value: float, what: str) -> str | None:
        """The P1 violation of a single probability value, or ``None``.

        The non-raising sibling of :meth:`check_probability`, used where
        the caller wants to recover (e.g. re-solve a corrupted pool
        result in the parent) instead of aborting.
        """
        if not self.enabled:
            return None
        try:
            check_probability(value, what, self.tolerance)
        except InvariantViolation as error:
            self._count(False)
            return str(error)
        self._count(True)
        return None

    def record_violation(
        self,
        record: "McsQuantification",
        worst_case: float | None = None,
    ) -> str | None:
        """The invariant one quantification record violates, or ``None``.

        Checks P1 on the value (and the lower bound when present), P3 on
        bounded records, and P4 — worst-case dominance — on records the
        exact or lumped rung produced.  P4 deliberately skips bounded
        records: a Monte-Carlo confidence interval or a §VIII bound may
        legitimately sit above the sharp worst case, and both already
        carry their own bracket.
        """
        if not self.enabled:
            return None
        try:
            what = f"p̃({'+'.join(sorted(record.cutset))})"
            check_probability(record.probability, what, self.tolerance)
            if record.lower_bound is not None:
                check_probability(
                    record.lower_bound, f"{what} lower bound", self.tolerance
                )
                check_interval(
                    record.lower_bound,
                    record.probability,
                    record.probability,
                    what,
                    self.tolerance,
                )
            if (
                worst_case is not None
                and not record.bounded
                and record.rung in ("exact", "lumped")
            ):
                slack = self.tolerance * max(1.0, worst_case)
                if record.probability > worst_case + slack:
                    raise InvariantViolation(
                        f"{what} = {record.probability!r} exceeds its static "
                        f"worst-case bound {worst_case!r} (inequality (1))"
                    )
        except InvariantViolation as error:
            self._count(False)
            return str(error)
        self._count(True)
        return None

    def summary(self) -> str:
        """One line for the health report."""
        return (
            f"verify={self.mode}: {self.checks} checks, "
            f"{self.violations} violations"
        )
