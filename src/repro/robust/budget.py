"""Cooperative resource budgets for long-running analyses.

A :class:`Budget` bounds what one analysis run may consume along three
axes — wall-clock time, total chain states solved, and completed
cutsets — and is checked *cooperatively*: the hot loops of MOCUS
(:mod:`repro.ft.mocus`), the transient solver
(:mod:`repro.ctmc.transient`) and the quantification loop
(:mod:`repro.core.analyzer`) poll it at safe interruption points.  When
a limit is hit the check raises
:class:`~repro.errors.BudgetExceededError`, which the pipeline converts
into a *partial result plus a conservative remainder bound* rather than
a crash (the behaviour production MCS engines exhibit under deadline
pressure).

The clock is injectable so tests can drive deadlines deterministically.
"""

from __future__ import annotations

import time
from typing import Callable

from repro.errors import BudgetExceededError
from repro.obs.metrics import NULL_METRICS, MetricsRegistry, NullMetrics

__all__ = ["Budget", "UNLIMITED"]


class Budget:
    """Shared, mutable resource accounting for one analysis run.

    Parameters
    ----------
    wall_seconds:
        Wall-clock deadline measured from construction (``None`` =
        unlimited).
    max_total_states:
        Cumulative cap on chain states handed to the transient solver
        across the whole run (``None`` = unlimited).  Distinct from the
        *per-cutset* ``max_chain_states`` guard: this one bounds the
        total state-solving work of the run.
    max_cutsets:
        Cap on completed cutsets during MOCUS generation (``None`` =
        unlimited).  Unlike ``MocusOptions.max_cutsets`` — a hard error
        limit — exhausting this budget yields a truncated-but-usable
        cutset list.
    clock:
        Monotonic time source; injectable for deterministic tests.
    metrics:
        Optional :class:`repro.obs.metrics.MetricsRegistry`; every
        charge is mirrored into the ``budget.*`` counters so a traced
        run shows where its budget went.
    """

    def __init__(
        self,
        wall_seconds: float | None = None,
        max_total_states: int | None = None,
        max_cutsets: int | None = None,
        clock: Callable[[], float] = time.monotonic,
        metrics: MetricsRegistry | NullMetrics | None = None,
    ) -> None:
        if wall_seconds is not None and wall_seconds < 0.0:
            raise ValueError(f"wall_seconds must be non-negative, got {wall_seconds}")
        self.wall_seconds = wall_seconds
        self.max_total_states = max_total_states
        self.max_cutsets = max_cutsets
        self._clock = clock
        self._started = clock()
        self.states_charged = 0
        self.cutsets_charged = 0
        self.metrics = metrics if metrics is not None else NULL_METRICS

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def unlimited(self) -> bool:
        """Whether every axis is unconstrained (checks are no-ops)."""
        return (
            self.wall_seconds is None
            and self.max_total_states is None
            and self.max_cutsets is None
        )

    def elapsed_seconds(self) -> float:
        """Wall-clock seconds since the budget was created."""
        return self._clock() - self._started

    def remaining_seconds(self) -> float | None:
        """Seconds left before the deadline, or ``None`` if unlimited."""
        if self.wall_seconds is None:
            return None
        return self.wall_seconds - self.elapsed_seconds()

    def expired(self) -> bool:
        """Whether the wall-clock deadline has passed."""
        remaining = self.remaining_seconds()
        return remaining is not None and remaining <= 0.0

    # ------------------------------------------------------------------
    # Cooperative checks
    # ------------------------------------------------------------------

    def check_deadline(self, stage: str) -> None:
        """Raise :class:`BudgetExceededError` if the deadline passed."""
        if self.expired():
            raise BudgetExceededError(
                f"wall-clock budget of {self.wall_seconds:g}s exhausted "
                f"after {self.elapsed_seconds():.2f}s (stage: {stage})",
                stage=stage,
            )

    def charge_states(self, n_states: int, stage: str) -> None:
        """Account for a chain of ``n_states`` about to be solved."""
        self.states_charged += n_states
        self.metrics.count("budget.states_charged", n_states)
        if (
            self.max_total_states is not None
            and self.states_charged > self.max_total_states
        ):
            raise BudgetExceededError(
                f"state budget of {self.max_total_states} total chain states "
                f"exhausted at {self.states_charged} (stage: {stage})",
                stage=stage,
            )

    def charge_cutset(self, stage: str) -> None:
        """Account for one completed cutset."""
        self.cutsets_charged += 1
        self.metrics.count("budget.cutsets_charged")
        if self.max_cutsets is not None and self.cutsets_charged > self.max_cutsets:
            raise BudgetExceededError(
                f"cutset budget of {self.max_cutsets} exhausted "
                f"(stage: {stage})",
                stage=stage,
            )

    def __repr__(self) -> str:
        parts = []
        if self.wall_seconds is not None:
            parts.append(f"wall={self.wall_seconds:g}s")
        if self.max_total_states is not None:
            parts.append(f"states<={self.max_total_states}")
        if self.max_cutsets is not None:
            parts.append(f"cutsets<={self.max_cutsets}")
        return f"Budget({', '.join(parts) or 'unlimited'})"


#: A shared no-op budget for call sites that require one.
UNLIMITED = Budget()
