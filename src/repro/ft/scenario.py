"""Scenario semantics of static fault trees (paper, Section II).

A *scenario* is a set of basic events assumed failed; all other basic
events are functional.  A gate is failed by a scenario according to its
logic (AND: all inputs failed; OR: any input failed; ATLEAST: at least
``k`` inputs failed), evaluated bottom-up over the DAG.

These routines are the semantic ground truth for everything else in
:mod:`repro.ft` — cutsets, MOCUS, the BDD compilation and the probability
calculations are all tested against brute-force enumeration built on
:func:`evaluate`.
"""

from __future__ import annotations

import itertools
from typing import AbstractSet, Iterable, Iterator, Mapping

from repro.errors import UnknownNodeError
from repro.ft.tree import FaultTree, GateType

__all__ = [
    "evaluate",
    "fails",
    "fails_top",
    "failure_scenarios",
    "scenario_probability",
    "exact_top_probability",
]


def evaluate(tree: FaultTree, scenario: AbstractSet[str]) -> dict[str, bool]:
    """Failure status of every node of ``tree`` under ``scenario``.

    Returns a mapping from node name (basic events and gates alike) to
    ``True`` if the node is failed by the scenario.  Unknown names in the
    scenario raise :class:`~repro.errors.UnknownNodeError` — a silently
    ignored typo in a scenario would invalidate an entire analysis.
    """
    for name in scenario:
        if not tree.is_event(name):
            raise UnknownNodeError(f"scenario contains non-event {name!r}")
    status: dict[str, bool] = {name: name in scenario for name in tree.events}
    for gate in tree.gates_bottom_up():
        failed_inputs = sum(status[child] for child in gate.children)
        if gate.gate_type is GateType.AND:
            status[gate.name] = failed_inputs == len(gate.children)
        elif gate.gate_type is GateType.OR:
            status[gate.name] = failed_inputs > 0
        else:  # ATLEAST
            assert gate.k is not None
            status[gate.name] = failed_inputs >= gate.k
    return status


def fails(tree: FaultTree, scenario: AbstractSet[str], gate_name: str) -> bool:
    """Return whether ``scenario`` fails the gate ``gate_name``."""
    return evaluate(tree, scenario)[gate_name]


def fails_top(tree: FaultTree, scenario: AbstractSet[str]) -> bool:
    """Return whether ``scenario`` is a failure scenario (fails the top gate)."""
    return evaluate(tree, scenario)[tree.top]


def failure_scenarios(tree: FaultTree) -> Iterator[frozenset[str]]:
    """Enumerate all failure scenarios by brute force.

    Exponential in the number of basic events; intended for tests and
    tiny examples only (it refuses trees with more than 22 events).
    """
    names = sorted(tree.events)
    if len(names) > 22:
        raise ValueError(
            f"brute-force enumeration over {len(names)} events is not sensible"
        )
    for r in range(len(names) + 1):
        for combo in itertools.combinations(names, r):
            scenario = frozenset(combo)
            if fails_top(tree, scenario):
                yield scenario


def scenario_probability(
    tree: FaultTree, scenario: AbstractSet[str]
) -> float:
    """Probability of exactly this scenario (paper, Section II).

    The product of ``p(a)`` over failed events and ``1 - p(a)`` over
    functional ones, under the independence assumption of static fault
    trees.
    """
    result = 1.0
    for name, event in tree.events.items():
        if name in scenario:
            result *= event.probability
        else:
            result *= 1.0 - event.probability
    return result


def exact_top_probability(tree: FaultTree) -> float:
    """Exact ``p(FT)`` by summing all failure scenarios.

    Brute force, for tests and tiny trees only — see
    :func:`repro.bdd.ft_bdd.exact_probability` for the scalable exact
    method.
    """
    return sum(scenario_probability(tree, s) for s in failure_scenarios(tree))


def restrict_scenario(
    scenario: AbstractSet[str], known: Mapping[str, bool]
) -> frozenset[str]:
    """Overlay hard assignments onto a scenario.

    Events mapped to ``True`` in ``known`` are added, events mapped to
    ``False`` are removed.  Used by the cutset-model construction, where
    static events from a cutset are assumed failed.
    """
    result = set(scenario)
    for name, value in known.items():
        if value:
            result.add(name)
        else:
            result.discard(name)
    return frozenset(result)


def minimal_failure_sets(
    tree: FaultTree, universe: Iterable[str] | None = None
) -> list[frozenset[str]]:
    """Brute-force minimal cutsets over an optional sub-universe of events.

    Enumerates subsets of ``universe`` (default: all events) in order of
    size and keeps the inclusion-minimal ones that fail the top gate.
    Exponential; used as a test oracle for MOCUS and the BDD extraction.
    """
    names = sorted(universe if universe is not None else tree.events)
    if len(names) > 20:
        raise ValueError(
            f"brute-force minimisation over {len(names)} events is not sensible"
        )
    minimal: list[frozenset[str]] = []
    for r in range(len(names) + 1):
        for combo in itertools.combinations(names, r):
            candidate = frozenset(combo)
            if any(m <= candidate for m in minimal):
                continue
            if fails_top(tree, candidate):
                minimal.append(candidate)
    return minimal
