"""Detection of independent modules in a fault tree.

A gate is a *module* when no node of its subtree is referenced from
outside the subtree.  Modules can be analysed in isolation and replaced
by a single super-event — the decomposition used by classical
static/dynamic hybrid approaches ([16] in the paper) and a useful
diagnostic for model structure.

The implementation is the linear-time visit-timestamp algorithm of
Dutuit & Rauzy: one DFS stamps each node with the times of its first and
last encounter (re-encounters through other parents re-stamp the node);
a gate is a module iff every descendant's stamps fall strictly inside
the window from the gate's first visit to the completion of its first
expansion.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ft.tree import FaultTree

__all__ = ["find_modules", "ModuleReport"]


@dataclass(frozen=True)
class ModuleReport:
    """Modules of a fault tree.

    ``modules`` lists the names of all gates that are modules (the top
    gate always is); ``maximal`` lists modules that are not contained in
    another module other than the top gate.
    """

    modules: tuple[str, ...]
    maximal: tuple[str, ...]


def find_modules(tree: FaultTree) -> ModuleReport:
    """Return all module gates of ``tree`` (restricted to nodes under top)."""
    first: dict[str, int] = {}
    last: dict[str, int] = {}
    done: dict[str, int] = {}
    clock = 0

    # Iterative DFS with explicit re-visit stamping.
    stack: list[tuple[str, bool]] = [(tree.top, False)]
    while stack:
        name, expanded = stack.pop()
        if expanded:
            clock += 1
            last[name] = clock
            done[name] = clock
            continue
        clock += 1
        if name in first:
            # Re-encounter through another parent: only refresh last.
            last[name] = clock
            continue
        first[name] = clock
        stack.append((name, True))
        for child in reversed(tree.children(name)):
            stack.append((child, False))

    # Bottom-up aggregation of descendant stamp windows.
    min_first: dict[str, int] = {}
    max_last: dict[str, int] = {}
    reachable = tree.reachable_from_top()
    for name in tree.topological_order():
        if name not in reachable:
            continue
        children = tree.children(name)
        if not children:
            continue
        lo = min(
            min(first[c], min_first.get(c, first[c])) for c in children
        )
        hi = max(max(last[c], max_last.get(c, last[c])) for c in children)
        min_first[name] = lo
        max_last[name] = hi

    # The descendant window must close before the gate's *first expansion*
    # completes, not before its last re-encounter: a later re-visit of the
    # gate through another parent stretches ``last`` past re-visits of
    # shared descendants and would mask outside references.
    modules = [
        name
        for name in tree.gates
        if name in reachable
        and min_first[name] > first[name]
        and max_last[name] < done[name]
    ]
    modules.sort(key=lambda n: first[n])

    maximal: list[str] = []
    # A module is maximal when no proper ancestor module other than the
    # top gate contains it.  Module stamp windows nest like parentheses
    # (every path to a node inside module ``m`` passes through ``m``, so
    # its first visit falls inside ``m``'s first expansion): module
    # ``b`` lies under module ``a`` iff ``first[a] < first[b]`` and
    # ``done[b] < done[a]``.  Walking in first-visit order, only the
    # most recently accepted window can still contain the next module —
    # an O(n) sweep where materialising ``gates_under`` per module
    # would be quadratic on chain-shaped trees.
    window_end = -1
    for name in modules:
        if name == tree.top:
            continue
        if first[name] < window_end:
            continue
        maximal.append(name)
        window_end = done[name]
    return ModuleReport(tuple(modules), tuple(maximal))
