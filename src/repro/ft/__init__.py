"""Static fault trees: model, cutset generation, probability, importance.

This subpackage is the static substrate of the SD fault-tree analysis
(paper, Sections II and IV): the DAG model itself, scenario semantics,
MOCUS cutset generation with a probabilistic cutoff, the standard
probability aggregations, importance measures and common-cause-failure
expansion.
"""

from repro.ft.builder import FaultTreeBuilder
from repro.ft.cutsets import CutSetList, cutset_probability, minimize
from repro.ft.importance import importance, rank_by_fussell_vesely
from repro.ft.mocus import MocusOptions, MocusResult, mocus
from repro.ft.probability import (
    ProbabilityResult,
    exact_probability,
    min_cut_upper_bound_probability,
    rare_event_probability,
)
from repro.ft.tree import BasicEvent, FaultTree, Gate, GateType

__all__ = [
    "BasicEvent",
    "CutSetList",
    "FaultTree",
    "FaultTreeBuilder",
    "Gate",
    "GateType",
    "MocusOptions",
    "MocusResult",
    "ProbabilityResult",
    "cutset_probability",
    "exact_probability",
    "importance",
    "min_cut_upper_bound_probability",
    "minimize",
    "mocus",
    "rank_by_fussell_vesely",
    "rare_event_probability",
]
