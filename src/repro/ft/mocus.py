"""MOCUS-style generation of minimal cutsets with a probabilistic cutoff.

This is the algorithm behind commercial static solvers such as
RiskSpectrum and Saphire (paper, Section IV-B).  It systematically
refines *partial cutsets* — a set of basic events already chosen to fail
plus a set of gates that still must be failed — starting from
``{g_top}``:

* an AND gate is replaced by all of its children (no branching),
* an OR gate branches the partial cutset, one branch per child,
* an ATLEAST gate branches once per k-subset of its children.

Efficiency comes from three prunings:

* the probabilistic **cutoff**: a partial cutset whose event-probability
  product is at or below ``c*`` (the paper uses ``1e-15``) is discarded —
  gates can only shrink the product further.  In-search pruning carries a
  tiny ULP slack (``_CUTOFF_SLACK``) so boundary-straddling partials
  survive to completion and the final *canonical* per-cutset product
  (:func:`repro.ft.cutsets.cutset_probability`) decides membership: the
  returned set is a pure function of the model, not of the search's
  multiplication order.  A probability parked *exactly on* the cutoff is
  still a single-rounding coin flip — don't park probabilities on the
  boundary;
* **deduplication** of identical partial cutsets (shared subtrees in the
  DAG regenerate the same states);
* **subsumption**: a partial whose events already contain a completed
  cutset can only yield non-minimal cutsets.

Internally both event sets and gate sets are integer bitmasks, so the
hot loop is C-speed integer arithmetic; names reappear only in the final
cutset list.

The module also exposes :func:`constrained_mcs`, the variant needed by
the SD cutset-model construction of Section V-C: minimal failure sets of
an arbitrary gate over a restricted universe of events, under hard
true/false assumptions for other events.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterable

from repro.errors import BudgetExceededError, CutoffError, UnknownNodeError
from repro.ft.cutsets import CutSetList
from repro.ft.normalize import restrict
from repro.ft.tree import FaultTree, GateType
from repro.robust import faults

if TYPE_CHECKING:  # imported only for signatures: keeps runtime deps one-way
    from repro.obs.metrics import MetricsRegistry
    from repro.robust.budget import Budget

__all__ = [
    "MocusOptions",
    "MocusPartial",
    "MocusResult",
    "MocusStats",
    "mocus",
    "constrained_mcs",
]

#: Default probabilistic cutoff, matching the paper's experiments.
DEFAULT_CUTOFF = 1e-15

#: In-search pruning slack.  The running product of a partial cutset is
#: accumulated in expansion order, which can round a hair differently
#: from the canonical per-cutset product (:func:`cutset_probability`).
#: Pruning only when ``running * (1 + slack) <= cutoff`` keeps
#: boundary-straddling partials alive to completion so the final
#: canonical ``truncate`` decides membership — making the returned set
#: {C minimal : canonical(C) > cutoff}, a pure function of the model
#: rather than of the search's multiplication order.  1e-12 relative
#: covers ~4500 ULPs, far beyond the drift of any realistic cutset.
_CUTOFF_SLACK = 1.0 + 1e-12

#: Masks with at most this many set bits use submask enumeration for the
#: subsumption test; larger ones scan the completed list.
_SUBMASK_ENUM_LIMIT = 12


@dataclass(frozen=True)
class MocusOptions:
    """Tuning knobs for the MOCUS search.

    Parameters
    ----------
    cutoff:
        Partial cutsets with event-probability product at or below this
        value are discarded (``0.0`` disables the cutoff and makes the
        search exact but potentially exponential).
    max_partials:
        Hard limit on the number of partial cutsets ever enqueued;
        exceeding it raises :class:`~repro.errors.CutoffError` rather than
        looping for hours.
    max_cutsets:
        Hard limit on the number of completed (pre-minimisation) cutsets.
    """

    cutoff: float = DEFAULT_CUTOFF
    max_partials: int = 20_000_000
    max_cutsets: int = 5_000_000


@dataclass
class MocusStats:
    """Counters describing one MOCUS run (attached to the result)."""

    partials_expanded: int = 0
    partials_cut_off: int = 0
    partials_deduplicated: int = 0
    partials_subsumed: int = 0
    completed: int = 0
    minimal: int = 0


@dataclass(frozen=True)
class MocusResult:
    """Minimal cutsets plus the search statistics that produced them.

    ``truncated`` marks a search cut short by a cooperative budget
    (:mod:`repro.robust.budget`): the cutsets are genuine minimal
    cutsets, but more may exist.  ``remainder_bound`` then bounds the
    probability mass of everything un-enumerated — by the union bound,
    any failure scenario not covered by a completed cutset must fail
    every event of some frontier partial, so the sum of frontier
    partial probabilities dominates the missed contribution.
    """

    cutsets: CutSetList
    stats: MocusStats = field(default_factory=MocusStats)
    truncated: bool = False
    remainder_bound: float = 0.0
    #: The complete minimal cutsets *before* cutoff truncation, as
    #: sorted name tuples — what the persistent cache stores so a warm
    #: run can re-truncate locally (empty for truncated searches).
    full_cutsets: tuple[tuple[str, ...], ...] = ()


@dataclass(frozen=True)
class MocusPartial:
    """Work salvaged from a budget-interrupted MOCUS run.

    Attached as ``partial`` to the :class:`BudgetExceededError` so the
    analyzer can keep the truncated result and checkpoint the frontier.
    ``frontier`` is the name-based snapshot accepted by
    ``mocus(resume=...)``.
    """

    result: MocusResult
    frontier: dict


def mocus(
    tree: FaultTree,
    options: MocusOptions | None = None,
    top: str | None = None,
    budget: Budget | None = None,
    on_progress: Callable[[Callable[[], dict]], None] | None = None,
    progress_every: int = 100_000,
    resume: dict | None = None,
    metrics: MetricsRegistry | None = None,
) -> MocusResult:
    """Generate minimal cutsets of ``tree`` (or of the gate ``top``).

    Returns a :class:`MocusResult` whose cutset list is sorted by
    descending probability.  With a nonzero cutoff the list contains the
    minimal cutsets with probability above the cutoff (dropping
    below-cutoff ones is the standard, deliberately conservative
    under-approximation of Section IV-A).

    ``budget`` is an optional :class:`repro.robust.budget.Budget`
    polled cooperatively; when it runs out the raised
    :class:`BudgetExceededError` carries a :class:`MocusPartial` with
    the minimal cutsets found so far and a resumable frontier snapshot.
    ``on_progress`` is called every ``progress_every`` expansions with a
    zero-argument snapshot builder (checkpointing hook).  ``resume``
    restarts the search from a snapshot produced by either mechanism.
    ``metrics`` is an optional
    :class:`repro.obs.metrics.MetricsRegistry`; the search counters are
    emitted once when the search finishes (also on budget truncation),
    never from inside the expansion loop.
    """
    opts = options or MocusOptions()
    root = top if top is not None else tree.top
    if not tree.is_gate(root):
        raise UnknownNodeError(f"top node {root!r} is not a gate")
    compiled = _compile(tree, root)
    stats = MocusStats()
    use_cutoff = opts.cutoff > 0.0

    # A partial cutset is (probability, event mask, gate mask,
    # parent-verified event mask, completed-list watermark).  The last
    # two fields drive the incremental subsumption test: when a child
    # carries the *same* event mask its parent already verified against
    # the completed list, only cutsets completed since the parent's
    # check (``completed[watermark:]``) can possibly subsume it.
    if resume is not None:
        # Restored partials carry no parental verification (-1 never
        # equals an event mask), so each gets one full check — sound,
        # and paid only once per restored frontier entry.
        stack = [
            (probability, _names_to_mask(compiled, events, False),
             _names_to_mask(compiled, gates, True), -1, 0)
            for probability, events, gates in resume["frontier"]
        ]
        completed = [
            _names_to_mask(compiled, names, False)
            for names in resume["completed"]
        ]
        completed_lookup = set(completed)
        stats.completed = len(completed)
        seen = {(events, gates) for _, events, gates, _, _ in stack}
        enqueued = len(stack)
    else:
        stack = [(1.0, 0, 1 << compiled.root_bit, -1, 0)]
        seen = {(0, stack[0][2])}
        completed = []
        completed_lookup = set()
        enqueued = 1

    def snapshot() -> dict:
        """Name-based frontier state: stable across processes."""
        return {
            "completed": [
                sorted(_mask_to_names(compiled, mask)) for mask in completed
            ],
            "frontier": [
                [
                    probability,
                    sorted(_mask_to_names(compiled, events)),
                    _mask_to_gate_names(compiled, gates),
                ]
                for probability, events, gates, _, _ in stack
            ],
        }

    def finish() -> MocusResult:
        minimal_masks = _minimize_masks(completed)
        stats.minimal = len(minimal_masks)
        named = [_mask_to_names(compiled, mask) for mask in minimal_masks]
        probabilities = {name: e.probability for name, e in tree.events.items()}
        cutsets = CutSetList.from_cutsets(named, probabilities, minimal=True)
        full = tuple(tuple(sorted(names)) for names in named)
        if use_cutoff:
            cutsets = cutsets.truncate(opts.cutoff)
        if metrics is not None:
            metrics.count("mocus.partials_expanded", stats.partials_expanded)
            metrics.count("mocus.partials_cut_off", stats.partials_cut_off)
            metrics.count(
                "mocus.partials_deduplicated", stats.partials_deduplicated
            )
            metrics.count("mocus.partials_subsumed", stats.partials_subsumed)
            metrics.count("mocus.cutsets_completed", stats.completed)
            metrics.count("mocus.cutsets_minimal", stats.minimal)
        return MocusResult(cutsets, stats, full_cutsets=full)

    next_progress = progress_every
    pick_memo: dict[int, int] = {}
    try:
        while stack:
            # Budget polls, fault polls and progress snapshots all happen
            # before the pop, so the frontier is exactly the current
            # stack — a snapshot taken mid-expansion would lose the
            # in-flight partial and every cutset below it.
            faults.check("mocus")
            if budget is not None and not (stats.partials_expanded & 255):
                budget.check_deadline("mocus")
            if on_progress is not None and stats.partials_expanded >= next_progress:
                on_progress(snapshot)
                next_progress = stats.partials_expanded + progress_every
            probability, events, gates, verified, watermark = stack.pop()
            if completed_lookup:
                # The expensive submask walk is needed only for masks no
                # ancestor has vouched for.  A child whose event mask
                # equals the one its parent already verified can only be
                # subsumed by cutsets completed *after* that check — an
                # exact shortcut, because completions only happen at the
                # pop of a gate-free partial, never between a parent's
                # check and its pushes.
                if events == verified:
                    subsumed = False
                    if watermark != len(completed):
                        for mask in completed[watermark:]:
                            if mask & ~events == 0:
                                subsumed = True
                                break
                    if subsumed:
                        stats.partials_subsumed += 1
                        continue
                elif _is_subsumed_mask(events, completed_lookup, completed):
                    stats.partials_subsumed += 1
                    continue
            if not gates:
                completed.append(events)
                completed_lookup.add(events)
                stats.completed += 1
                if stats.completed > opts.max_cutsets:
                    raise CutoffError(
                        f"MOCUS exceeded max_cutsets={opts.max_cutsets}; "
                        f"raise the cutoff or the limit"
                    )
                if budget is not None:
                    budget.charge_cutset("mocus")
                continue
            stats.partials_expanded += 1
            verified_at = len(completed)
            gate_bit = pick_memo.get(gates, -1)
            if gate_bit < 0:
                gate_bit = _pick_gate_bit(compiled, gates)
                pick_memo[gates] = gate_bit
            remaining = gates & ~(1 << gate_bit)
            for add_events, add_gates in compiled.branches[gate_bit]:
                new_bits = add_events & ~events
                new_probability = probability
                if new_bits:
                    bits = new_bits
                    while bits:
                        low = bits & -bits
                        new_probability *= compiled.probability[low.bit_length() - 1]
                        bits ^= low
                if use_cutoff and new_probability * _CUTOFF_SLACK <= opts.cutoff:
                    stats.partials_cut_off += 1
                    continue
                new_events = events | add_events
                new_gates = remaining | add_gates
                state = (new_events, new_gates)
                if state in seen:
                    stats.partials_deduplicated += 1
                    continue
                seen.add(state)
                stack.append(
                    (new_probability, new_events, new_gates, events, verified_at)
                )
                enqueued += 1
                if enqueued > opts.max_partials:
                    raise CutoffError(
                        f"MOCUS exceeded max_partials={opts.max_partials}; "
                        f"raise the cutoff or the limit"
                    )
    except BudgetExceededError as error:
        # Salvage the work: the completed cutsets are genuine minimal
        # cutsets, and the frontier's probability sum conservatively
        # bounds everything not yet enumerated (union bound over the
        # frontier branches).
        remainder = sum(entry[0] for entry in stack)
        result = finish()
        error.partial = MocusPartial(
            MocusResult(
                result.cutsets,
                result.stats,
                truncated=True,
                remainder_bound=remainder,
            ),
            snapshot(),
        )
        raise

    return finish()


def constrained_mcs(
    tree: FaultTree,
    gate_name: str,
    universe: frozenset[str],
    assumed_failed: frozenset[str] = frozenset(),
    options: MocusOptions | None = None,
) -> list[frozenset[str]] | bool:
    """Minimal subsets of ``universe`` that fail ``gate_name``.

    Every event in ``assumed_failed`` is fixed to *failed* and every
    event outside ``universe | assumed_failed`` is fixed to *functional*;
    the result lists the inclusion-minimal subsets of ``universe`` whose
    failure (on top of the assumptions) fails the gate.

    Returns ``True`` if the assumptions alone already fail the gate,
    ``False`` if the gate cannot fail under them, and the list of minimal
    sets otherwise.  This is exactly the computation of the sets
    ``A_1..A_k`` in step 2 of the ``FT_C`` construction (Section V-C).
    """
    assignment: dict[str, bool] = {}
    subtree_events = tree.events_under(gate_name)
    for name in subtree_events:
        if name in assumed_failed:
            assignment[name] = True
        elif name not in universe:
            assignment[name] = False
    restriction = restrict(tree, gate_name, assignment)
    if restriction.is_constant:
        return bool(restriction.constant)
    residual = restriction.tree
    assert residual is not None
    # The restricted tree contains only universe events; run MOCUS on it
    # without a cutoff (these trees are small by construction).
    opts = options or MocusOptions(cutoff=0.0)
    result = mocus(residual, options=opts)
    return [frozenset(c) for c in result.cutsets]


# ----------------------------------------------------------------------
# Compiled tree representation
# ----------------------------------------------------------------------


@dataclass
class _Compiled:
    """Bitmask view of the tree under the chosen root."""

    event_names: list[str]
    probability: list[float]
    gate_names: list[str]
    root_bit: int
    #: Per gate bit: list of (event mask, gate mask) expansion branches.
    branches: list[list[tuple[int, int]]]
    #: Per gate bit: number of branches (for the expansion heuristic).
    branch_counts: list[int]


def _compile(tree: FaultTree, root: str) -> _Compiled:
    reachable_gates = sorted(tree.gates_under(root))
    reachable_events = sorted(tree.events_under(root))
    event_bit = {name: i for i, name in enumerate(reachable_events)}
    gate_bit = {name: i for i, name in enumerate(reachable_gates)}
    probability = [tree.events[name].probability for name in reachable_events]

    branches: list[list[tuple[int, int]]] = []
    branch_counts: list[int] = []
    for name in reachable_gates:
        gate = tree.gates[name]
        raw: list[tuple[str, ...]]
        if gate.gate_type is GateType.AND:
            raw = [gate.children]
        elif gate.gate_type is GateType.OR:
            raw = [(child,) for child in gate.children]
        else:
            assert gate.k is not None
            raw = list(itertools.combinations(gate.children, gate.k))
        masks: list[tuple[int, int]] = []
        for branch in raw:
            events_mask = 0
            gates_mask = 0
            for child in branch:
                if child in event_bit:
                    events_mask |= 1 << event_bit[child]
                else:
                    gates_mask |= 1 << gate_bit[child]
            masks.append((events_mask, gates_mask))
        branches.append(masks)
        branch_counts.append(len(masks))
    return _Compiled(
        reachable_events,
        probability,
        reachable_gates,
        gate_bit[root],
        branches,
        branch_counts,
    )


def _pick_gate_bit(compiled: _Compiled, gates: int) -> int:
    """The pending gate with the fewest branches (AND gates first)."""
    best_bit = -1
    best_count = -1
    bits = gates
    while bits:
        low = bits & -bits
        bit = low.bit_length() - 1
        count = compiled.branch_counts[bit]
        if count == 1:
            return bit
        if best_count < 0 or count < best_count:
            best_count = count
            best_bit = bit
        bits ^= low
    return best_bit


def _mask_to_names(compiled: _Compiled, mask: int) -> frozenset[str]:
    names = []
    while mask:
        low = mask & -mask
        names.append(compiled.event_names[low.bit_length() - 1])
        mask ^= low
    return frozenset(names)


def _mask_to_gate_names(compiled: _Compiled, mask: int) -> list[str]:
    names = []
    while mask:
        low = mask & -mask
        names.append(compiled.gate_names[low.bit_length() - 1])
        mask ^= low
    return sorted(names)


def _names_to_mask(compiled: _Compiled, names: Iterable[str], gates: bool) -> int:
    """Rebuild a bitmask from checkpointed names (resume path).

    Bit assignment is deterministic (sorted reachable names), so a
    snapshot from the same tree round-trips exactly; unknown names mean
    the tree changed and resuming would be unsound.
    """
    table = compiled.gate_names if gates else compiled.event_names
    bit_of = {name: i for i, name in enumerate(table)}
    mask = 0
    for name in names:
        try:
            mask |= 1 << bit_of[name]
        except KeyError:
            raise UnknownNodeError(
                f"cannot resume MOCUS: {name!r} is not a "
                f"{'gate' if gates else 'basic event'} of this tree"
            ) from None
    return mask


# ----------------------------------------------------------------------
# Mask-level subsumption and minimisation
# ----------------------------------------------------------------------


def _is_subsumed_mask(
    candidate: int, lookup: set[int], completed: list[int]
) -> bool:
    """Whether some completed mask is a submask of ``candidate``."""
    population = candidate.bit_count()
    if population <= _SUBMASK_ENUM_LIMIT:
        # Standard submask walk: sub = (sub - 1) & candidate visits every
        # non-empty submask exactly once.
        sub = candidate
        while sub:
            if sub in lookup:
                return True
            sub = (sub - 1) & candidate
        return False
    for mask in completed:
        if mask & ~candidate == 0:
            return True
    return False


def _minimize_masks(masks: list[int]) -> list[int]:
    """Inclusion-minimal members of a family of bitmasks."""
    by_size = sorted(set(masks), key=int.bit_count)
    kept: list[int] = []
    kept_lookup: set[int] = set()
    for candidate in by_size:
        if kept_lookup and _is_subsumed_mask(candidate, kept_lookup, kept):
            continue
        kept.append(candidate)
        kept_lookup.add(candidate)
    return kept
