"""Importance measures over minimal-cutset lists.

The paper's industrial experiments (Section VI-B) pick which basic
events to dynamise by *Fussell–Vesely importance* and build trigger
chains between events of equal importance.  This module implements the
four standard measures used in probabilistic safety assessment, all
computed on a minimal-cutset list with the rare-event aggregation:

* **Fussell–Vesely (FV)** — fraction of the top probability flowing
  through cutsets containing the event.
* **Birnbaum (B)** — partial derivative of the top probability with
  respect to the event probability.
* **Risk Achievement Worth (RAW)** — factor by which the top probability
  grows when the event is certain to fail.
* **Risk Reduction Worth (RRW)** — factor by which the top probability
  shrinks when the event can never fail.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping

from repro.ft.cutsets import CutSetList, cutset_probability

__all__ = ["EventImportance", "importance", "rank_by_fussell_vesely"]


@dataclass(frozen=True)
class EventImportance:
    """All four importance measures for one basic event."""

    event: str
    fussell_vesely: float
    birnbaum: float
    risk_achievement_worth: float
    risk_reduction_worth: float


def importance(cutsets: CutSetList) -> dict[str, EventImportance]:
    """Compute importance measures for every event occurring in ``cutsets``.

    All measures use the rare-event aggregation, which makes them exact
    derivatives/ratios *of the rare-event approximation* — the standard
    industrial convention.  Events absent from every cutset have FV and
    Birnbaum zero and are not included in the result.

    Boundary conventions:

    * An event with probability zero *is* included when it appears in a
      cutset: its FV is zero (its cutsets carry no probability) but its
      Birnbaum — the probability of the rest of each containing cutset —
      is generally positive, and its RAW reports the (possibly infinite)
      growth factor of forcing it certain.
    * An event contained in every positive-probability cutset has
      ``RRW = inf``: making it perfect removes all quantified risk.
    * When the whole top probability is zero, RAW is the ratio
      ``achieved/0`` — ``inf`` when forcing the event certain creates
      risk, and the neutral ``1.0`` when it does not; RRW is ``1.0``
      (there is no risk to reduce).
    """
    probabilities = cutsets.probabilities
    total = cutsets.rare_event()
    # For each event, the sum of p(C) over cutsets containing it and the
    # "derivative mass" sum of p(C)/p(a) (probability of the rest of C).
    containing_mass: dict[str, float] = {}
    derivative_mass: dict[str, float] = {}
    for cutset in cutsets:
        p = cutset_probability(cutset, probabilities)
        for name in cutset:
            containing_mass[name] = containing_mass.get(name, 0.0) + p
            p_event = probabilities[name]
            if p_event > 0.0:
                rest = p / p_event
            else:
                rest = cutset_probability(cutset - {name}, probabilities)
            derivative_mass[name] = derivative_mass.get(name, 0.0) + rest

    results: dict[str, EventImportance] = {}
    for name, mass in containing_mass.items():
        p_event = probabilities[name]
        birnbaum = derivative_mass[name]
        fv = mass / total if total > 0.0 else 0.0
        # p(top | p(a)=1) = total - mass + birnbaum; p(top | p(a)=0) = total - mass.
        achieved = total - mass + birnbaum
        reduced = total - mass
        if total > 0.0:
            raw = achieved / total
            rrw = total / reduced if reduced > 0.0 else math.inf
        else:
            # Degenerate top: no risk to achieve against or to reduce.
            raw = math.inf if achieved > 0.0 else 1.0
            rrw = 1.0
        results[name] = EventImportance(name, fv, birnbaum, raw, rrw)
    return results


def rank_by_fussell_vesely(cutsets: CutSetList) -> list[tuple[str, float]]:
    """Events sorted by descending FV importance (ties: by name).

    This is the ranking used in Section VI-B to choose which basic
    events become dynamic and how trigger chains are formed.
    """
    measures = importance(cutsets)
    return sorted(
        ((name, m.fussell_vesely) for name, m in measures.items()),
        key=lambda pair: (-pair[1], pair[0]),
    )


def top_probability_with(
    cutsets: CutSetList, overrides: Mapping[str, float]
) -> float:
    """Rare-event top probability with some event probabilities replaced.

    Re-aggregates the existing cutset list under modified probabilities —
    the cheap re-evaluation the paper's concluding remark relies on for
    importance and uncertainty analyses (no new MOCUS run needed).
    """
    merged = dict(cutsets.probabilities)
    merged.update(overrides)
    return sum(cutset_probability(c, merged) for c in cutsets)
