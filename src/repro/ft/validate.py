"""Structural validation and linting of static fault trees.

:class:`FaultTree` construction already enforces hard invariants (unique
names, known children, acyclicity, probability ranges).  This module
adds soft diagnostics a modeller wants before trusting an analysis:
unreachable nodes, single-input gates, constant-probability events, and
size statistics.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ft.tree import FaultTree, GateType

__all__ = ["Issue", "ValidationReport", "validate", "tree_stats", "TreeStats"]


@dataclass(frozen=True)
class Issue:
    """One diagnostic finding: a severity, the node concerned, a message."""

    severity: str  # "warning" or "info"
    node: str
    message: str


@dataclass(frozen=True)
class ValidationReport:
    """All diagnostics for one tree."""

    issues: tuple[Issue, ...]

    @property
    def warnings(self) -> tuple[Issue, ...]:
        """Only the warning-level issues."""
        return tuple(i for i in self.issues if i.severity == "warning")

    def __bool__(self) -> bool:
        """A report is truthy when there are no warnings."""
        return not self.warnings


def validate(tree: FaultTree) -> ValidationReport:
    """Lint ``tree`` and return a :class:`ValidationReport`."""
    issues: list[Issue] = []
    reachable = tree.reachable_from_top()
    for name in sorted(tree.events):
        if name not in reachable:
            issues.append(
                Issue("warning", name, "basic event unreachable from the top gate")
            )
        event = tree.events[name]
        if event.probability == 0.0:
            issues.append(
                Issue("info", name, "probability 0: event can never contribute")
            )
        elif event.probability == 1.0:
            issues.append(
                Issue("warning", name, "probability 1: event is certain to fail")
            )
        elif event.probability > 0.1:
            issues.append(
                Issue(
                    "info",
                    name,
                    f"probability {event.probability} is large; the rare-event "
                    f"approximation degrades above ~1e-1",
                )
            )
    for name, gate in sorted(tree.gates.items()):
        if name not in reachable:
            issues.append(
                Issue("warning", name, "gate unreachable from the top gate")
            )
        if len(gate.children) == 1 and gate.gate_type is not GateType.ATLEAST:
            issues.append(
                Issue("info", name, "single-input gate (acts as a pass-through)")
            )
    return ValidationReport(tuple(issues))


@dataclass(frozen=True)
class TreeStats:
    """Size statistics of a fault tree (the numbers reported in tables)."""

    n_events: int
    n_gates: int
    n_and: int
    n_or: int
    n_atleast: int
    max_depth: int
    mean_fan_in: float


def tree_stats(tree: FaultTree) -> TreeStats:
    """Compute :class:`TreeStats` for ``tree``."""
    n_and = sum(1 for g in tree.gates.values() if g.gate_type is GateType.AND)
    n_or = sum(1 for g in tree.gates.values() if g.gate_type is GateType.OR)
    n_atleast = len(tree.gates) - n_and - n_or
    depth: dict[str, int] = {name: 1 for name in tree.events}
    for gate in tree.gates_bottom_up():
        depth[gate.name] = 1 + max(depth[c] for c in gate.children)
    total_fan_in = sum(len(g.children) for g in tree.gates.values())
    return TreeStats(
        n_events=len(tree.events),
        n_gates=len(tree.gates),
        n_and=n_and,
        n_or=n_or,
        n_atleast=n_atleast,
        max_depth=depth[tree.top],
        mean_fan_in=total_fan_in / len(tree.gates) if tree.gates else 0.0,
    )
