"""Fluent construction of static fault trees.

:class:`FaultTree` objects are immutable, which makes incremental model
construction awkward.  :class:`FaultTreeBuilder` collects nodes in any
order (children may be declared after the gates that use them), then
:meth:`FaultTreeBuilder.build` assembles and validates the tree.

Example
-------
>>> from repro.ft import FaultTreeBuilder
>>> b = FaultTreeBuilder("cooling")
>>> _ = b.event("a", 3e-3).event("b", 1e-3)
>>> _ = b.event("c", 3e-3).event("d", 1e-3)
>>> _ = b.event("e", 3e-6)
>>> _ = b.or_("pump1", "a", "b").or_("pump2", "c", "d")
>>> _ = b.and_("pumps", "pump1", "pump2")
>>> ft = b.or_("cooling", "pumps", "e").build("cooling")
>>> sorted(ft.events)
['a', 'b', 'c', 'd', 'e']
"""

from __future__ import annotations

from typing import Iterable

from repro.errors import DuplicateNameError, ModelError
from repro.ft.tree import BasicEvent, FaultTree, Gate, GateType

__all__ = ["FaultTreeBuilder"]


class FaultTreeBuilder:
    """Accumulates basic events and gates, then builds a :class:`FaultTree`.

    All ``event``/gate methods return ``self`` so calls can be chained.
    Node names must be unique across events and gates.
    """

    def __init__(self, name: str = "fault-tree") -> None:
        self.name = name
        self._events: dict[str, BasicEvent] = {}
        self._gates: dict[str, Gate] = {}

    # ------------------------------------------------------------------
    # Node declaration
    # ------------------------------------------------------------------

    def event(
        self, name: str, probability: float, description: str = ""
    ) -> "FaultTreeBuilder":
        """Declare a basic event with the given failure probability."""
        self._check_fresh(name)
        self._events[name] = BasicEvent(name, probability, description)
        return self

    def events(self, pairs: Iterable[tuple[str, float]]) -> "FaultTreeBuilder":
        """Declare several basic events from ``(name, probability)`` pairs."""
        for name, probability in pairs:
            self.event(name, probability)
        return self

    def gate(
        self,
        name: str,
        gate_type: GateType,
        children: Iterable[str],
        k: int | None = None,
        description: str = "",
    ) -> "FaultTreeBuilder":
        """Declare a gate of an explicit type."""
        self._check_fresh(name)
        self._gates[name] = Gate(name, gate_type, tuple(children), k, description)
        return self

    def and_(self, name: str, *children: str, description: str = "") -> "FaultTreeBuilder":
        """Declare an AND gate over ``children``."""
        return self.gate(name, GateType.AND, children, description=description)

    def or_(self, name: str, *children: str, description: str = "") -> "FaultTreeBuilder":
        """Declare an OR gate over ``children``."""
        return self.gate(name, GateType.OR, children, description=description)

    def atleast(
        self, name: str, k: int, *children: str, description: str = ""
    ) -> "FaultTreeBuilder":
        """Declare a k-of-n voting gate over ``children``."""
        return self.gate(name, GateType.ATLEAST, children, k=k, description=description)

    # ------------------------------------------------------------------
    # Assembly
    # ------------------------------------------------------------------

    def has_node(self, name: str) -> bool:
        """Return whether a node of this name has been declared."""
        return name in self._events or name in self._gates

    def build(self, top: str) -> FaultTree:
        """Assemble the declared nodes into a validated :class:`FaultTree`."""
        if top not in self._gates:
            raise ModelError(f"top node {top!r} was not declared as a gate")
        return FaultTree(
            top, self._events.values(), self._gates.values(), name=self.name
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _check_fresh(self, name: str) -> None:
        if name in self._events or name in self._gates:
            raise DuplicateNameError(f"node {name!r} declared twice")
