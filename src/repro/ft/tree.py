"""Static fault-tree model.

A (coherent) static fault tree is a finite DAG whose leaves are *basic
events* carrying a failure probability and whose inner nodes are *gates*
of type AND, OR or ATLEAST (k-of-n voting).  A distinguished gate is the
*top gate* and models failure of the complete system (paper, Section II).

The classes here are deliberately plain data: :class:`BasicEvent` and
:class:`Gate` are frozen dataclasses and :class:`FaultTree` is an
immutable container with cached structural queries (parents, topological
order, per-gate descendant sets).  Use :class:`repro.ft.builder.FaultTreeBuilder`
to construct trees conveniently and :mod:`repro.ft.validate` to check
structural invariants.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping

from repro.errors import (
    CyclicModelError,
    DuplicateNameError,
    InvalidProbabilityError,
    ModelError,
    UnknownNodeError,
)

__all__ = ["GateType", "BasicEvent", "Gate", "FaultTree"]


class GateType(enum.Enum):
    """The logic implemented by a gate.

    ``AND`` fails when all inputs fail, ``OR`` when at least one input
    fails, ``ATLEAST`` (a k-of-n voting gate) when at least ``k`` inputs
    fail.  ATLEAST is standard in probabilistic safety assessment models;
    it is not part of the paper's minimal formalism but normalises to
    AND/OR (see :mod:`repro.ft.normalize`), so every algorithm in this
    package supports it either natively or after normalisation.
    """

    AND = "and"
    OR = "or"
    ATLEAST = "atleast"


@dataclass(frozen=True)
class BasicEvent:
    """A leaf of the fault tree: an atomic failure with a probability.

    Parameters
    ----------
    name:
        Unique identifier within the tree.
    probability:
        Probability that the event is failed (per mission), in ``[0, 1]``.
    description:
        Optional human-readable description; carried through analyses
        and reports but never interpreted.
    """

    name: str
    probability: float
    description: str = ""

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise InvalidProbabilityError(
                f"basic event {self.name!r}: probability {self.probability} "
                f"is outside [0, 1]"
            )


@dataclass(frozen=True)
class Gate:
    """An inner node of the fault tree.

    Parameters
    ----------
    name:
        Unique identifier within the tree.
    gate_type:
        One of :class:`GateType`.
    children:
        Names of the gate's inputs (gates or basic events).  Order is
        preserved but carries no semantics.
    k:
        Voting threshold, required iff ``gate_type`` is ``ATLEAST``.
    """

    name: str
    gate_type: GateType
    children: tuple[str, ...]
    k: int | None = None
    description: str = ""

    def __post_init__(self) -> None:
        if not self.children:
            raise ModelError(f"gate {self.name!r} has no inputs")
        if len(set(self.children)) != len(self.children):
            raise ModelError(f"gate {self.name!r} lists a child twice")
        if self.gate_type is GateType.ATLEAST:
            if self.k is None:
                raise ModelError(f"ATLEAST gate {self.name!r} needs k")
            if not 1 <= self.k <= len(self.children):
                raise ModelError(
                    f"ATLEAST gate {self.name!r}: k={self.k} is outside "
                    f"[1, {len(self.children)}]"
                )
        elif self.k is not None:
            raise ModelError(
                f"gate {self.name!r} of type {self.gate_type.value} must not set k"
            )


@dataclass(frozen=True)
class _Caches:
    """Mutable lazily-filled caches hidden inside the frozen tree."""

    parents: dict[str, tuple[str, ...]] | None = None
    order: tuple[str, ...] | None = None
    events_under: dict[str, frozenset[str]] = field(default_factory=dict)
    gates_under: dict[str, frozenset[str]] = field(default_factory=dict)


class FaultTree:
    """An immutable static fault tree.

    The constructor checks that names are unique, every referenced child
    exists, the graph is acyclic, and the top node is a gate.  All heavy
    structural queries are cached after first use; the tree itself never
    changes, so the caches stay valid.
    """

    def __init__(
        self,
        top: str,
        events: Iterable[BasicEvent],
        gates: Iterable[Gate],
        name: str = "fault-tree",
    ) -> None:
        self.name = name
        self._events: dict[str, BasicEvent] = {}
        self._gates: dict[str, Gate] = {}
        for event in events:
            if event.name in self._events:
                raise DuplicateNameError(f"duplicate basic event {event.name!r}")
            self._events[event.name] = event
        for gate in gates:
            if gate.name in self._gates or gate.name in self._events:
                raise DuplicateNameError(f"duplicate node {gate.name!r}")
            self._gates[gate.name] = gate
        for gate in self._gates.values():
            for child in gate.children:
                if child not in self._gates and child not in self._events:
                    raise UnknownNodeError(
                        f"gate {gate.name!r} references unknown node {child!r}"
                    )
        if top not in self._gates:
            raise ModelError(f"top node {top!r} is not a gate of the tree")
        self.top = top
        self._caches = _Caches()
        # Computing the order up front doubles as the acyclicity check.
        self._caches = _Caches(order=self._toposort())

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------

    @property
    def events(self) -> Mapping[str, BasicEvent]:
        """All basic events, keyed by name."""
        return self._events

    @property
    def gates(self) -> Mapping[str, Gate]:
        """All gates, keyed by name."""
        return self._gates

    def is_event(self, name: str) -> bool:
        """Return whether ``name`` is a basic event of this tree."""
        return name in self._events

    def is_gate(self, name: str) -> bool:
        """Return whether ``name`` is a gate of this tree."""
        return name in self._gates

    def children(self, name: str) -> tuple[str, ...]:
        """Children of a gate; a basic event has none."""
        gate = self._gates.get(name)
        if gate is not None:
            return gate.children
        if name in self._events:
            return ()
        raise UnknownNodeError(f"unknown node {name!r}")

    def probability(self, event_name: str) -> float:
        """Failure probability of a basic event."""
        try:
            return self._events[event_name].probability
        except KeyError:
            raise UnknownNodeError(f"unknown basic event {event_name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._events or name in self._gates

    def __repr__(self) -> str:
        return (
            f"FaultTree({self.name!r}, top={self.top!r}, "
            f"{len(self._events)} events, {len(self._gates)} gates)"
        )

    # ------------------------------------------------------------------
    # Structure queries
    # ------------------------------------------------------------------

    def parents(self, name: str) -> tuple[str, ...]:
        """Gates that list ``name`` among their children."""
        if self._caches.parents is None:
            parent_lists: dict[str, list[str]] = {n: [] for n in self._iter_names()}
            for gate in self._gates.values():
                for child in gate.children:
                    parent_lists[child].append(gate.name)
            self._caches = _Caches(
                parents={n: tuple(ps) for n, ps in parent_lists.items()},
                order=self._caches.order,
                events_under=self._caches.events_under,
                gates_under=self._caches.gates_under,
            )
        try:
            return self._caches.parents[name]  # type: ignore[index]
        except KeyError:
            raise UnknownNodeError(f"unknown node {name!r}") from None

    def topological_order(self) -> tuple[str, ...]:
        """All node names ordered children-before-parents.

        Basic events come first (they have no children); the last gate in
        the order that lies under the top gate is the top gate itself.
        Nodes unreachable from the top are still included.
        """
        assert self._caches.order is not None
        return self._caches.order

    def gates_bottom_up(self) -> Iterator[Gate]:
        """Iterate over gates so that every child gate precedes its parents."""
        for name in self.topological_order():
            gate = self._gates.get(name)
            if gate is not None:
                yield gate

    def events_under(self, gate_name: str) -> frozenset[str]:
        """Names of all basic events in the subtree rooted at ``gate_name``.

        For a basic event argument, the result is the singleton of itself,
        which lets callers treat leaves and gates uniformly.
        """
        if gate_name in self._events:
            return frozenset((gate_name,))
        cached = self._caches.events_under.get(gate_name)
        if cached is not None:
            return cached
        self._gate_or_raise(gate_name)
        cache = self._caches.events_under
        for name in self._gates_below(gate_name):
            if name in cache:
                continue
            collected: set[str] = set()
            for child in self._gates[name].children:
                if child in self._events:
                    collected.add(child)
                else:
                    collected |= cache[child]
            cache[name] = frozenset(collected)
        return cache[gate_name]

    def gates_under(self, gate_name: str) -> frozenset[str]:
        """Names of all gates in the subtree rooted at ``gate_name``, inclusive."""
        if gate_name in self._events:
            return frozenset()
        cached = self._caches.gates_under.get(gate_name)
        if cached is not None:
            return cached
        self._gate_or_raise(gate_name)
        cache = self._caches.gates_under
        for name in self._gates_below(gate_name):
            if name in cache:
                continue
            collected = {name}
            for child in self._gates[name].children:
                if child in self._gates:
                    collected |= cache[child]
            cache[name] = frozenset(collected)
        return cache[gate_name]

    def _gates_below(self, gate_name: str) -> list[str]:
        """Gates at or below ``gate_name``, children before parents.

        Iterative (reachability sweep filtered through the cached global
        topological order), so chain trees thousands of gates deep never
        touch the recursion limit — these queries sit on the compile
        path of the BDD static engine.
        """
        below: set[str] = set()
        stack = [gate_name]
        while stack:
            name = stack.pop()
            if name in below or name not in self._gates:
                continue
            below.add(name)
            stack.extend(self._gates[name].children)
        return [name for name in self.topological_order() if name in below]

    def descendants(self, gate_name: str) -> frozenset[str]:
        """All node names strictly below ``gate_name`` (gates and events)."""
        return (self.gates_under(gate_name) - {gate_name}) | self.events_under(
            gate_name
        )

    def reachable_from_top(self) -> frozenset[str]:
        """Names of all nodes reachable from the top gate, inclusive.

        A plain sweep rather than ``gates_under | events_under``: those
        materialise one set per gate (quadratic on chain-shaped trees),
        while reachability only needs the union.
        """
        reachable: set[str] = set()
        stack = [self.top]
        while stack:
            name = stack.pop()
            if name in reachable:
                continue
            reachable.add(name)
            gate = self._gates.get(name)
            if gate is not None:
                stack.extend(gate.children)
        return frozenset(reachable)

    # ------------------------------------------------------------------
    # Derived trees
    # ------------------------------------------------------------------

    def with_probabilities(self, updates: Mapping[str, float]) -> "FaultTree":
        """Return a copy with the probabilities of some events replaced.

        ``updates`` maps basic-event names to new probabilities.  Unknown
        names raise; unlisted events keep their probability.
        """
        for name in updates:
            if name not in self._events:
                raise UnknownNodeError(f"unknown basic event {name!r}")
        events = [
            BasicEvent(e.name, updates.get(e.name, e.probability), e.description)
            for e in self._events.values()
        ]
        return FaultTree(self.top, events, self._gates.values(), name=self.name)

    def subtree(self, gate_name: str, name: str | None = None) -> "FaultTree":
        """Return the fault tree rooted at ``gate_name``.

        The result shares node objects with this tree but contains only
        the nodes of the chosen subtree.
        """
        self._gate_or_raise(gate_name)
        gate_names = self.gates_under(gate_name)
        event_names = self.events_under(gate_name)
        return FaultTree(
            gate_name,
            [self._events[n] for n in sorted(event_names)],
            [self._gates[n] for n in sorted(gate_names)],
            name=name or f"{self.name}/{gate_name}",
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _iter_names(self) -> Iterator[str]:
        yield from self._events
        yield from self._gates

    def _gate_or_raise(self, name: str) -> Gate:
        gate = self._gates.get(name)
        if gate is None:
            raise UnknownNodeError(f"node {name!r} is not a gate of the tree")
        return gate

    def _toposort(self) -> tuple[str, ...]:
        """Kahn's algorithm; raises :class:`CyclicModelError` on a cycle."""
        remaining_children = {
            name: len(gate.children) for name, gate in self._gates.items()
        }
        order: list[str] = sorted(self._events)
        queue = [
            name for name, count in sorted(remaining_children.items()) if count == 0
        ]
        parent_lists: dict[str, list[str]] = {n: [] for n in self._iter_names()}
        for gate in self._gates.values():
            for child in gate.children:
                parent_lists[child].append(gate.name)
        # Events are sources: process their parents first.
        for event_name in sorted(self._events):
            for parent in parent_lists[event_name]:
                remaining_children[parent] -= 1
                if remaining_children[parent] == 0:
                    queue.append(parent)
        while queue:
            name = queue.pop()
            order.append(name)
            for parent in parent_lists[name]:
                remaining_children[parent] -= 1
                if remaining_children[parent] == 0:
                    queue.append(parent)
        if len(order) != len(self._events) + len(self._gates):
            stuck = sorted(n for n, c in remaining_children.items() if c > 0)
            raise CyclicModelError(f"fault tree contains a cycle through {stuck}")
        return tuple(order)
