"""Parametric uncertainty analysis over minimal-cutset lists.

The paper's concluding remark: "for importance and uncertainty analyses,
one needs to evaluate the list of minimal cutsets many times".  This
module implements the standard PSA uncertainty propagation: basic-event
probabilities carry lognormal uncertainty (the industry convention,
parameterised by a median and an *error factor* ``EF``, the ratio of the
95th percentile to the median), samples are drawn per event, and the
cutset list is re-aggregated per sample — no new cutset generation
needed, which is what makes the analysis cheap.

The re-aggregation is vectorised with numpy: all samples of a cutset's
probability are computed at once, so ten thousand Monte-Carlo samples of
a ten-thousand-cutset list take seconds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.errors import ModelError
from repro.ft.cutsets import CutSetList

__all__ = ["LogNormal", "UncertaintyResult", "propagate"]

#: z-score of the 95th percentile, the reference quantile of error factors.
_Z95 = 1.6448536269514722


@dataclass(frozen=True)
class LogNormal:
    """Lognormal uncertainty on one probability.

    ``median`` is the 50th percentile; ``error_factor`` is
    ``p95 / median`` (must be at least 1).  ``sigma`` of the underlying
    normal is ``ln(EF) / z95``.
    """

    median: float
    error_factor: float

    def __post_init__(self) -> None:
        if self.median <= 0.0:
            raise ModelError(f"median must be positive, got {self.median}")
        if self.error_factor < 1.0:
            raise ModelError(
                f"error factor must be >= 1, got {self.error_factor}"
            )

    @property
    def sigma(self) -> float:
        """Standard deviation of the underlying normal distribution."""
        return math.log(self.error_factor) / _Z95

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        """Draw ``size`` samples, clipped into ``[0, 1]``.

        Clipping at 1 is the standard pragmatic treatment of lognormal
        probabilities (mass above 1 is physically meaningless).
        """
        draws = rng.lognormal(math.log(self.median), self.sigma, size)
        return np.clip(draws, 0.0, 1.0)


@dataclass(frozen=True)
class UncertaintyResult:
    """Distribution summary of the propagated top-event probability."""

    mean: float
    median: float
    p05: float
    p95: float
    standard_deviation: float
    n_samples: int

    @property
    def error_factor(self) -> float:
        """Empirical ``p95 / median`` of the result distribution."""
        if self.median <= 0.0:
            return math.inf
        return self.p95 / self.median


def propagate(
    cutsets: CutSetList,
    distributions: Mapping[str, LogNormal],
    n_samples: int = 10_000,
    seed: int | None = None,
    default_error_factor: float = 3.0,
) -> UncertaintyResult:
    """Monte-Carlo propagation through the rare-event aggregation.

    ``distributions`` assigns a :class:`LogNormal` per event; events
    without an entry get a lognormal with their point probability as
    median and ``default_error_factor``.  Every key of ``distributions``
    must name an event occurring in the cutset list — a stray key is a
    silent no-op (typically a typo'd event name) and raises
    :class:`~repro.errors.ModelError` instead.  Returns summary
    statistics of the sampled rare-event top probability.
    """
    if n_samples <= 1:
        raise ModelError(f"need at least 2 samples, got {n_samples}")
    rng = np.random.default_rng(seed)
    involved = sorted(cutsets.events_involved())
    unknown = sorted(set(distributions) - set(involved))
    if unknown:
        raise ModelError(
            f"distributions refer to events in no cutset: {', '.join(unknown)}"
        )
    index = {name: i for i, name in enumerate(involved)}

    samples = np.empty((len(involved), n_samples))
    for name in involved:
        distribution = distributions.get(name)
        if distribution is None:
            median = cutsets.probabilities[name]
            if median <= 0.0:
                samples[index[name]] = 0.0
                continue
            distribution = LogNormal(median, default_error_factor)
        samples[index[name]] = distribution.sample(rng, n_samples)

    total = np.zeros(n_samples)
    for cutset in cutsets:
        rows = [index[name] for name in cutset]
        total += np.prod(samples[rows], axis=0)

    return UncertaintyResult(
        mean=float(total.mean()),
        median=float(np.median(total)),
        p05=float(np.percentile(total, 5)),
        p95=float(np.percentile(total, 95)),
        standard_deviation=float(total.std(ddof=1)),
        n_samples=n_samples,
    )
