"""Top-event probability of static fault trees.

Three evaluation routes with different cost/accuracy trade-offs:

* :func:`rare_event_probability` — generate minimal cutsets with MOCUS
  and sum their probabilities (the paper's ``p_rea``, Section IV-A).
  Over-approximates but scales to industrial trees.
* :func:`min_cut_upper_bound_probability` — same cutsets aggregated with
  the MCUB formula, a tighter upper bound.
* :func:`exact_probability` — exact value via BDD compilation (Shannon
  expansion), feasible for small and medium trees.

All three accept pre-computed cutsets to avoid repeated MOCUS runs when
several aggregations of the same tree are needed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ft.cutsets import CutSetList
from repro.ft.mocus import MocusOptions, mocus
from repro.ft.tree import FaultTree

__all__ = [
    "ProbabilityResult",
    "rare_event_probability",
    "min_cut_upper_bound_probability",
    "exact_probability",
    "evaluate_cutsets",
]


@dataclass(frozen=True)
class ProbabilityResult:
    """Outcome of a static probability evaluation.

    ``method`` records how the value was obtained (``"rare-event"``,
    ``"mcub"``, ``"exact-bdd"``); ``n_cutsets`` is zero for BDD-exact
    evaluations, which never materialise a cutset list.
    """

    value: float
    method: str
    n_cutsets: int = 0


def evaluate_cutsets(
    tree: FaultTree, options: MocusOptions | None = None
) -> CutSetList:
    """Minimal cutsets of ``tree`` as a :class:`CutSetList` (via MOCUS)."""
    return mocus(tree, options=options).cutsets


def rare_event_probability(
    tree: FaultTree,
    options: MocusOptions | None = None,
    cutsets: CutSetList | None = None,
) -> ProbabilityResult:
    """Rare-event approximation of ``p(FT)``: the sum over relevant MCSs."""
    if cutsets is None:
        cutsets = evaluate_cutsets(tree, options)
    return ProbabilityResult(cutsets.rare_event(), "rare-event", len(cutsets))


def min_cut_upper_bound_probability(
    tree: FaultTree,
    options: MocusOptions | None = None,
    cutsets: CutSetList | None = None,
) -> ProbabilityResult:
    """MCUB aggregation ``1 - prod(1 - p(C))`` over relevant MCSs."""
    if cutsets is None:
        cutsets = evaluate_cutsets(tree, options)
    return ProbabilityResult(cutsets.min_cut_upper_bound(), "mcub", len(cutsets))


def exact_probability(tree: FaultTree) -> ProbabilityResult:
    """Exact ``p(FT)`` by BDD compilation of the whole tree.

    Exponential in the worst case but typically fast for trees up to a
    few hundred events with a good variable order; used in tests as the
    oracle for the approximate aggregations.
    """
    # Imported here: repro.bdd depends on repro.ft.tree, so a module-level
    # import would be circular.
    from repro.bdd.ft_bdd import compile_tree

    compiled = compile_tree(tree)
    return ProbabilityResult(compiled.probability(), "exact-bdd", 0)
