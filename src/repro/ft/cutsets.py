"""Cutset algebra: minimisation, probabilities and aggregation.

A *cutset* is a set of basic events whose joint failure fails the top
gate; a *minimal cutset* (MCS) contains no smaller cutset (paper,
Section IV-A).  This module represents cutsets as ``frozenset[str]`` and
provides

* inclusion-minimisation of cutset families (:func:`minimize`),
* per-cutset probability ``p(C) = prod p(a)`` (:func:`cutset_probability`),
* the three standard aggregations of an MCS list: rare-event
  approximation, min-cut upper bound, and exact inclusion–exclusion
  (:class:`CutSetList`).
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Mapping, Sequence

__all__ = [
    "CutSet",
    "minimize",
    "cutset_probability",
    "CutSetList",
]

CutSet = frozenset  # type alias: a cutset is a frozen set of event names


#: Candidates up to this size use exhaustive subset enumeration (2^k
#: hash lookups); larger ones fall back to a per-element bucket scan.
_SUBSET_ENUM_LIMIT = 12


def minimize(cutsets: Iterable[frozenset[str]]) -> list[frozenset[str]]:
    """Keep only the inclusion-minimal members of a family of sets.

    Candidates are processed in order of size, so any set that could
    dominate a candidate is already kept.  For the small cutsets typical
    of fault trees the dominance test enumerates every proper subset of
    the candidate (at most ``2^k`` hash lookups into the kept-set table)
    — constant work per candidate, unlike pairwise scans, which degrade
    quadratically when one frequent event appears in most cutsets.
    Oversized candidates fall back to scanning the kept sets bucketed by
    element.
    """
    by_size = sorted(set(cutsets), key=len)
    kept: list[frozenset[str]] = []
    kept_lookup: set[frozenset[str]] = set()
    buckets: dict[str, list[frozenset[str]]] = {}
    for candidate in by_size:
        if not candidate:
            return [candidate]  # the empty set subsumes everything
        if is_subsumed(candidate, kept_lookup, buckets):
            continue
        kept.append(candidate)
        kept_lookup.add(candidate)
        for element in candidate:
            buckets.setdefault(element, []).append(candidate)
    return kept


def is_subsumed(
    candidate: frozenset[str],
    kept_lookup: set[frozenset[str]],
    buckets: dict[str, list[frozenset[str]]],
) -> bool:
    """Whether some kept set is a (non-strict) subset of ``candidate``.

    ``kept_lookup`` and ``buckets`` must describe the same family (a
    hash set of all kept sets, and the kept sets indexed under each of
    their elements).  Exposed for the MOCUS search, which uses the same
    test to prune partial cutsets against already-completed ones.
    """
    if len(candidate) <= _SUBSET_ENUM_LIMIT:
        elements = sorted(candidate)
        # Enumerate subsets via bit masks, smallest first; include the
        # full set itself (an exact duplicate is subsumed too).
        for mask in range(1, 1 << len(elements)):
            subset = frozenset(
                elements[i] for i in range(len(elements)) if mask & (1 << i)
            )
            if subset in kept_lookup:
                return True
        return False
    checked: set[frozenset[str]] = set()
    for element in candidate:
        for small in buckets.get(element, ()):
            if small in checked:
                continue
            checked.add(small)
            if small <= candidate:
                return True
    return False


def cutset_probability(
    cutset: frozenset[str], probabilities: Mapping[str, float]
) -> float:
    """Probability that all events of ``cutset`` fail, ``prod p(a)``.

    This equals the total probability of all scenarios the cutset
    represents (paper, Section IV-A property ii), thanks to event
    independence.

    Factors multiply in sorted-name order so the rounded product is a
    pure function of the *logical* set: frozensets iterate in
    hash-table order, which varies with construction history, and an
    order-dependent product would make cutoff-boundary membership and
    probability-tie sort order differ between runs that built the same
    cutset differently (cold search vs warm cache vs incremental
    recomposition).
    """
    result = 1.0
    for name in sorted(cutset):
        result *= probabilities[name]
    return result


@dataclass(frozen=True)
class CutSetList:
    """An ordered list of (minimal) cutsets with aggregation helpers.

    Construction does not re-minimise; use :meth:`from_cutsets` to
    minimise and sort by descending probability in one step.
    """

    cutsets: tuple[frozenset[str], ...]
    probabilities: Mapping[str, float]

    @classmethod
    def from_cutsets(
        cls,
        cutsets: Iterable[frozenset[str]],
        probabilities: Mapping[str, float],
        minimal: bool = False,
    ) -> "CutSetList":
        """Build a list, minimising (unless already minimal) and sorting.

        Cutsets are ordered by descending probability and then
        lexicographically for determinism.
        """
        family = list(cutsets) if minimal else minimize(cutsets)
        family.sort(key=lambda c: (-cutset_probability(c, probabilities), sorted(c)))
        return cls(tuple(family), probabilities)

    def __len__(self) -> int:
        return len(self.cutsets)

    def __iter__(self) -> Iterator[frozenset[str]]:
        return iter(self.cutsets)

    def __getitem__(self, index: int) -> frozenset[str]:
        return self.cutsets[index]

    def probability_of(self, index: int) -> float:
        """Probability of the ``index``-th cutset."""
        return cutset_probability(self.cutsets[index], self.probabilities)

    def rare_event(self) -> float:
        """Rare-event approximation: the sum of cutset probabilities.

        An over-approximation of the true failure probability because
        scenarios represented by several MCSs are counted once per MCS
        (paper, Section IV-A property iii).
        """
        return sum(cutset_probability(c, self.probabilities) for c in self.cutsets)

    def sound_estimate(self) -> tuple[float, str]:
        """A sound aggregation: ``(value, estimator)``.

        The rare-event sum is a provable over-approximation that can
        exceed 1.0 on high-probability models — the classical overshoot
        bug of first-order quantification.  This accessor serves the raw
        sum while it is a probability and switches to the (always sound,
        always tighter) :meth:`min_cut_upper_bound` the moment the sum
        overshoots, naming which estimator produced the value:
        ``"rare-event"`` or ``"min-cut-ub"``.
        """
        total = self.rare_event()
        if total > 1.0:
            return self.min_cut_upper_bound(), "min-cut-ub"
        return total, "rare-event"

    def largest_cutset_probability(self) -> float:
        """Probability of the most likely single cutset (0.0 when empty).

        A sound *lower* bound on the top-event probability of a coherent
        tree — the floor of the bracket
        ``largest <= exact <= rare-event sum`` the cross-checks assert.
        """
        if not self.cutsets:
            return 0.0
        return max(
            cutset_probability(c, self.probabilities) for c in self.cutsets
        )

    def min_cut_upper_bound(self) -> float:
        """The MCUB aggregation ``1 - prod (1 - p(C))``.

        Tighter than the rare-event sum and still an upper bound for
        coherent trees; exact when cutsets are disjoint.
        """
        log_complement = 0.0
        for cutset in self.cutsets:
            p = cutset_probability(cutset, self.probabilities)
            if p >= 1.0:
                return 1.0
            log_complement += math.log1p(-p)
        return -math.expm1(log_complement)

    def inclusion_exclusion(self, max_terms: int | None = None) -> float:
        """Exact probability of the union by inclusion–exclusion.

        Exponential in the number of cutsets (``2^n - 1`` terms); the
        paper notes this is infeasible for large models, so callers must
        keep lists short.  ``max_terms`` truncates the expansion at a
        given intersection order, alternating between upper (odd orders)
        and lower (even orders) Bonferroni bounds.
        """
        n = len(self.cutsets)
        if max_terms is None:
            max_terms = n
        if n > 24 and max_terms >= n:
            raise ValueError(
                f"inclusion-exclusion over {n} cutsets is infeasible; "
                f"pass max_terms to truncate"
            )
        total = 0.0
        sign = 1.0
        for order in range(1, max_terms + 1):
            layer = 0.0
            for combo in itertools.combinations(self.cutsets, order):
                union: frozenset[str] = frozenset().union(*combo)
                layer += cutset_probability(union, self.probabilities)
            total += sign * layer
            sign = -sign
        return total

    def truncate(self, cutoff: float) -> "CutSetList":
        """Drop cutsets whose probability is at or below ``cutoff``."""
        kept = tuple(
            c
            for c in self.cutsets
            if cutset_probability(c, self.probabilities) > cutoff
        )
        return CutSetList(kept, self.probabilities)

    def filtered(
        self, predicate: Callable[[frozenset[str]], bool]
    ) -> "CutSetList":
        """Keep only cutsets satisfying ``predicate``, preserving order."""
        return CutSetList(
            tuple(c for c in self.cutsets if predicate(c)), self.probabilities
        )

    def size_histogram(self) -> dict[int, int]:
        """Map cutset size to the number of cutsets of that size."""
        histogram: dict[int, int] = {}
        for cutset in self.cutsets:
            histogram[len(cutset)] = histogram.get(len(cutset), 0) + 1
        return dict(sorted(histogram.items()))

    def events_involved(self) -> frozenset[str]:
        """All basic events that appear in at least one cutset."""
        involved: set[str] = set()
        for cutset in self.cutsets:
            involved |= cutset
        return frozenset(involved)


def verify_minimal(
    cutsets: Sequence[frozenset[str]],
) -> bool:
    """Return whether no cutset in the family contains another.

    Quadratic; intended for tests and assertions, not hot paths.
    """
    for a, b in itertools.permutations(cutsets, 2):
        if a < b:
            return False
    return True
