"""Common-cause-failure (CCF) modelling.

The paper observes (Section VI-A) that common-cause failures "usually
dominate the result" of nuclear safety studies and are "less influenced
by timing dependencies".  To let models carry realistic CCF structure,
this module implements the two parametric CCF models standard in PSA:

* the **beta-factor model** — one common-cause event fails the whole
  redundancy group with probability ``beta * p``; independent failures
  keep ``(1 - beta) * p``;
* the **alpha-factor model** — one common-cause event per failure
  multiplicity ``k`` (2-of-n, 3-of-n, ...), with probabilities derived
  from the alpha factors ``alpha_1..alpha_n``.

:func:`apply_ccf` expands CCF groups into an existing tree: each member
event ``m`` is replaced by an OR gate over its reduced independent event
and the common-cause events covering ``m``.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.errors import InvalidProbabilityError, ModelError, UnknownNodeError
from repro.ft.tree import BasicEvent, FaultTree, Gate, GateType

__all__ = ["CcfGroup", "beta_factor_group", "alpha_factor_group", "apply_ccf"]


@dataclass(frozen=True)
class CcfGroup:
    """A resolved common-cause group, ready to be expanded into a tree.

    ``independent`` maps each member to the probability of its
    independent (reduced) failure; ``common`` lists common-cause basic
    events, each covering a subset of members with a probability.
    """

    name: str
    members: tuple[str, ...]
    independent: dict[str, float]
    common: tuple[tuple[frozenset[str], float], ...]


def beta_factor_group(
    name: str, members: Sequence[str], probability: float, beta: float
) -> CcfGroup:
    """Build a beta-factor CCF group.

    Every member keeps an independent failure of probability
    ``(1 - beta) * probability``; a single common-cause event of
    probability ``beta * probability`` fails all members at once.
    """
    if not 0.0 <= beta <= 1.0:
        raise InvalidProbabilityError(f"CCF group {name!r}: beta={beta} not in [0,1]")
    if len(members) < 2:
        raise ModelError(f"CCF group {name!r} needs at least two members")
    independent = {m: (1.0 - beta) * probability for m in members}
    common = ((frozenset(members), beta * probability),)
    return CcfGroup(name, tuple(members), independent, common)


def alpha_factor_group(
    name: str,
    members: Sequence[str],
    probability: float,
    alphas: Sequence[float],
) -> CcfGroup:
    """Build an alpha-factor CCF group.

    ``alphas[k-1]`` is the fraction of failure events that involve
    exactly ``k`` members (so ``len(alphas) == len(members)`` and the
    alphas sum to one).  The per-multiplicity event probability follows
    the standard staggered-testing formula

    ``Q_k = alpha_k / C(n-1, k-1) * Q_total / alpha_t``

    with ``alpha_t = sum(k * alpha_k)``.  One common-cause basic event is
    generated for every subset of each multiplicity ``k >= 2``.
    """
    n = len(members)
    if len(alphas) != n:
        raise ModelError(
            f"CCF group {name!r}: need {n} alpha factors, got {len(alphas)}"
        )
    if any(a < 0.0 for a in alphas) or not math.isclose(sum(alphas), 1.0, abs_tol=1e-9):
        raise InvalidProbabilityError(
            f"CCF group {name!r}: alpha factors must be non-negative and sum to 1"
        )
    if n < 2:
        raise ModelError(f"CCF group {name!r} needs at least two members")
    alpha_t = sum((k + 1) * a for k, a in enumerate(alphas))
    q_by_multiplicity = [
        alphas[k - 1] / math.comb(n - 1, k - 1) * probability / alpha_t
        for k in range(1, n + 1)
    ]
    independent = {m: q_by_multiplicity[0] for m in members}
    common: list[tuple[frozenset[str], float]] = []
    for k in range(2, n + 1):
        q = q_by_multiplicity[k - 1]
        if q <= 0.0:
            continue
        for subset in itertools.combinations(members, k):
            common.append((frozenset(subset), q))
    return CcfGroup(name, tuple(members), independent, tuple(common))


def apply_ccf(tree: FaultTree, groups: Iterable[CcfGroup]) -> FaultTree:
    """Expand CCF groups into ``tree``.

    Every member event ``m`` of a group becomes an OR gate named ``m``
    (keeping all original gate references valid) over:

    * a new independent event ``m#ind`` with the reduced probability, and
    * one shared common-cause event ``<group>#cc<i>`` per common-cause
      term covering ``m``.

    Members must be existing basic events and may belong to one group
    only.
    """
    groups = list(groups)
    claimed: set[str] = set()
    for group in groups:
        for member in group.members:
            if not tree.is_event(member):
                raise UnknownNodeError(
                    f"CCF group {group.name!r}: member {member!r} is not a "
                    f"basic event of the tree"
                )
            if member in claimed:
                raise ModelError(
                    f"event {member!r} appears in more than one CCF group"
                )
            claimed.add(member)

    events: dict[str, BasicEvent] = {
        n: e for n, e in tree.events.items() if n not in claimed
    }
    gates: dict[str, Gate] = dict(tree.gates)
    for group in groups:
        cc_names: list[str] = []
        member_cc: dict[str, list[str]] = {m: [] for m in group.members}
        for i, (covered, probability) in enumerate(group.common):
            cc_name = f"{group.name}#cc{i}"
            events[cc_name] = BasicEvent(
                cc_name,
                probability,
                description=f"CCF of {', '.join(sorted(covered))}",
            )
            cc_names.append(cc_name)
            for member in covered:
                member_cc[member].append(cc_name)
        for member in group.members:
            independent_name = f"{member}#ind"
            events[independent_name] = BasicEvent(
                independent_name,
                group.independent[member],
                description=f"independent failure of {member}",
            )
            gates[member] = Gate(
                member,
                GateType.OR,
                tuple([independent_name, *member_cc[member]]),
                description=f"{member} with CCF group {group.name}",
            )
    return FaultTree(tree.top, events.values(), gates.values(), name=tree.name)
