"""Structural transformations of static fault trees.

Three transformations used throughout the package:

* :func:`expand_atleast` rewrites every k-of-n voting gate into the
  equivalent OR-of-ANDs structure, producing a tree over AND/OR only —
  the paper's minimal gate set.
* :func:`restrict` partially evaluates a tree under a fixed assignment
  of some basic events (used by the cutset-model construction of
  Section V-C, where static events from the cutset are assumed failed
  and events outside the relevant set are assumed functional).
* :func:`prune` removes nodes unreachable from the top gate.

All transformations return new trees; inputs are never mutated.
"""

from __future__ import annotations

import itertools
from typing import Mapping

from repro.errors import UnknownNodeError
from repro.ft.tree import BasicEvent, FaultTree, Gate, GateType

__all__ = ["expand_atleast", "restrict", "prune", "simplify", "Restriction"]


def expand_atleast(tree: FaultTree) -> FaultTree:
    """Rewrite ATLEAST gates into OR-of-AND structures.

    A gate ``atleast(k; c1..cn)`` becomes an OR over one AND gate per
    k-subset of its children.  The expansion is exponential in ``n - k``
    for large voting gates, which is why most algorithms here support
    ATLEAST natively; this function exists for consumers that only speak
    AND/OR (and as an oracle in tests).
    """
    gates: dict[str, Gate] = {}
    counter = itertools.count()
    for gate in tree.gates.values():
        if gate.gate_type is not GateType.ATLEAST:
            gates[gate.name] = gate
            continue
        assert gate.k is not None
        if gate.k == len(gate.children):
            gates[gate.name] = Gate(gate.name, GateType.AND, gate.children)
            continue
        if gate.k == 1:
            gates[gate.name] = Gate(gate.name, GateType.OR, gate.children)
            continue
        combo_names: list[str] = []
        for combo in itertools.combinations(gate.children, gate.k):
            combo_name = f"{gate.name}#atleast{next(counter)}"
            gates[combo_name] = Gate(combo_name, GateType.AND, combo)
            combo_names.append(combo_name)
        gates[gate.name] = Gate(gate.name, GateType.OR, tuple(combo_names))
    return FaultTree(tree.top, tree.events.values(), gates.values(), name=tree.name)


class Restriction:
    """Result of partially evaluating a tree under an assignment.

    Either the restricted root reduces to a constant (``constant`` holds
    ``True``/``False`` and ``tree`` is ``None``) or a residual tree over
    the unassigned events remains (``tree`` holds it, ``constant`` is
    ``None``).
    """

    def __init__(self, tree: FaultTree | None, constant: bool | None) -> None:
        assert (tree is None) != (constant is None)
        self.tree = tree
        self.constant = constant

    @property
    def is_constant(self) -> bool:
        """Whether the restriction collapsed to a constant truth value."""
        return self.constant is not None

    def __repr__(self) -> str:
        if self.is_constant:
            return f"Restriction(constant={self.constant})"
        return f"Restriction(tree={self.tree!r})"


def restrict(
    tree: FaultTree, root: str, assignment: Mapping[str, bool]
) -> Restriction:
    """Partially evaluate the subtree at ``root`` under ``assignment``.

    ``assignment`` maps basic-event names to fixed truth values (failed /
    functional).  Fixed events disappear from the result; gates whose
    value is forced collapse.  Gates that become single-child are kept as
    one-input gates so node names remain stable for callers that refer to
    them.

    The residual tree contains only nodes reachable from ``root``.
    """
    for name in assignment:
        if not tree.is_event(name):
            raise UnknownNodeError(f"assignment contains non-event {name!r}")

    # value[name] is True/False when forced, None when still symbolic.
    value: dict[str, bool | None] = {}
    for name in tree.events:
        value[name] = assignment.get(name)
    residual_children: dict[str, tuple[str, ...]] = {}
    for gate in tree.gates_bottom_up():
        free = [c for c in gate.children if value[c] is None]
        n_true = sum(1 for c in gate.children if value[c] is True)
        if gate.gate_type is GateType.AND:
            if n_true + len(free) < len(gate.children):  # some child is False
                value[gate.name] = False
            elif not free:
                value[gate.name] = True
            else:
                value[gate.name] = None
                residual_children[gate.name] = tuple(free)
        elif gate.gate_type is GateType.OR:
            if n_true > 0:
                value[gate.name] = True
            elif not free:
                value[gate.name] = False
            else:
                value[gate.name] = None
                residual_children[gate.name] = tuple(free)
        else:  # ATLEAST
            assert gate.k is not None
            needed = gate.k - n_true
            if needed <= 0:
                value[gate.name] = True
            elif needed > len(free):
                value[gate.name] = False
            else:
                value[gate.name] = None
                residual_children[gate.name] = tuple(free)

    root_value = value.get(root)
    if root not in tree.gates and root not in tree.events:
        raise UnknownNodeError(f"unknown node {root!r}")
    if root_value is not None:
        return Restriction(None, root_value)
    if tree.is_event(root):
        # A bare unassigned event as root: wrap in a trivial OR gate so the
        # result is a well-formed tree.
        wrapper = Gate(f"{root}#root", GateType.OR, (root,))
        return Restriction(
            FaultTree(wrapper.name, [tree.events[root]], [wrapper], name=tree.name),
            None,
        )

    # Collect the residual subtree below root, skipping forced children.
    gates: dict[str, Gate] = {}
    events: dict[str, BasicEvent] = {}
    stack = [root]
    visited: set[str] = set()
    while stack:
        name = stack.pop()
        if name in visited:
            continue
        visited.add(name)
        if tree.is_event(name):
            events[name] = tree.events[name]
            continue
        original = tree.gates[name]
        free = residual_children[name]
        if original.gate_type is GateType.ATLEAST:
            assert original.k is not None
            n_true = sum(1 for c in original.children if value[c] is True)
            needed = original.k - n_true
            if needed == len(free):
                gates[name] = Gate(name, GateType.AND, free)
            elif needed == 1:
                gates[name] = Gate(name, GateType.OR, free)
            else:
                gates[name] = Gate(name, GateType.ATLEAST, free, k=needed)
        else:
            gates[name] = Gate(name, original.gate_type, free)
        stack.extend(free)
    return Restriction(
        FaultTree(root, events.values(), gates.values(), name=tree.name), None
    )


def prune(tree: FaultTree) -> FaultTree:
    """Drop all nodes not reachable from the top gate."""
    reachable = tree.reachable_from_top()
    return FaultTree(
        tree.top,
        [e for n, e in tree.events.items() if n in reachable],
        [g for n, g in tree.gates.items() if n in reachable],
        name=tree.name,
    )


def simplify(tree: FaultTree) -> FaultTree:
    """Structural simplification preserving the boolean function.

    Three rewrites applied bottom-up until none fires, then a prune:

    * **pass-through collapse** — a single-input AND/OR gate is replaced
      by its child everywhere (the top gate is kept as a one-input gate
      if needed, so the result is still a fault tree);
    * **same-type flattening** — an AND (OR) child of an AND (OR) gate
      that is referenced nowhere else is inlined into its parent;
    * **duplicate-child elimination** happens implicitly through the
      set-based child merge during flattening.

    Deep layered models (real PSA exports routinely wrap everything in
    transfer gates) shrink substantially; MOCUS and BDD compilation both
    benefit.  Semantic equivalence is property-tested against scenario
    enumeration.
    """
    gates: dict[str, Gate] = dict(tree.gates)
    changed = True
    while changed:
        changed = False
        # Resolution map for pass-through gates discovered this round.
        resolve: dict[str, str] = {}
        for name, gate in gates.items():
            if (
                len(gate.children) == 1
                and gate.gate_type is not GateType.ATLEAST
                and name != tree.top
            ):
                resolve[name] = gate.children[0]
        if resolve:

            def target(name: str) -> str:
                while name in resolve:
                    name = resolve[name]
                return name

            # A voting gate whose children would collide after
            # resolution must keep its original references (collapsing
            # two children onto one node changes the vote count), so
            # the pass-through gates on those paths survive.
            keep: set[str] = set()
            for gate in gates.values():
                if gate.gate_type is not GateType.ATLEAST:
                    continue
                resolved = [target(c) for c in gate.children]
                if len(set(resolved)) != len(resolved):
                    for child in gate.children:
                        node = child
                        while node in resolve:
                            keep.add(node)
                            node = resolve[node]
            for name in keep:
                del resolve[name]
            if not resolve:
                changed = False
            else:
                changed = True
                blocked_atleast = {
                    gate.name
                    for gate in gates.values()
                    if gate.gate_type is GateType.ATLEAST
                    and any(c in keep for c in gate.children)
                }
                rebuilt: dict[str, Gate] = {}
                for name, gate in gates.items():
                    if name in resolve:
                        continue
                    if name in blocked_atleast:
                        rebuilt[name] = gate
                        continue
                    rebuilt[name] = Gate(
                        gate.name,
                        gate.gate_type,
                        tuple(dict.fromkeys(target(c) for c in gate.children)),
                        gate.k,
                        gate.description,
                    )
                gates = rebuilt
                continue

        # Count references for the single-parent flattening condition.
        reference_counts: dict[str, int] = {}
        for gate in gates.values():
            for child in gate.children:
                reference_counts[child] = reference_counts.get(child, 0) + 1
        for name, gate in list(gates.items()):
            if gate.gate_type is GateType.ATLEAST:
                continue
            inlineable = [
                c
                for c in gate.children
                if c in gates
                and gates[c].gate_type is gate.gate_type
                and gates[c].gate_type is not GateType.ATLEAST
                and reference_counts.get(c, 0) == 1
                and c != tree.top
            ]
            if not inlineable:
                continue
            merged: list[str] = []
            for child in gate.children:
                if child in inlineable:
                    merged.extend(gates[child].children)
                else:
                    merged.append(child)
            gates[name] = Gate(
                name,
                gate.gate_type,
                tuple(dict.fromkeys(merged)),
                gate.k,
                gate.description,
            )
            for child in inlineable:
                del gates[child]
            changed = True
            break
    simplified = FaultTree(
        tree.top, tree.events.values(), gates.values(), name=tree.name
    )
    return prune(simplified)
