"""repro — scalable analysis of fault trees with dynamic features.

A from-scratch reproduction of the DSN 2015 paper by Jan Krčál and
Pavel Krčál: SD fault trees combine *static* basic events (plain failure
probabilities) with *dynamic* ones (triggered continuous-time Markov
chains with repairs), and are analysed at static-tool scale by
generating minimal cutsets on a static translation and quantifying each
cutset with a small per-cutset Markov chain.

Quickstart
----------
>>> from repro import SdFaultTreeBuilder, analyze, AnalysisOptions
>>> from repro.ctmc import repairable, triggered_repairable
>>> b = SdFaultTreeBuilder("cooling")
>>> _ = b.static_event("a", 3e-3).static_event("c", 3e-3).static_event("e", 3e-6)
>>> _ = b.dynamic_event("b", repairable(0.001, 0.05))
>>> _ = b.dynamic_event("d", triggered_repairable(0.001, 0.05))
>>> _ = b.or_("pump1", "a", "b").or_("pump2", "c", "d")
>>> _ = b.and_("pumps", "pump1", "pump2").or_("cooling", "pumps", "e")
>>> _ = b.trigger("pump1", "d")
>>> result = analyze(b.build("cooling"), AnalysisOptions(horizon=24.0))
>>> result.failure_probability < result.static_bound
True

Subpackages
-----------
* :mod:`repro.core` — SD fault trees and the analysis pipeline.
* :mod:`repro.ft` — static fault trees, MOCUS, importance, CCF.
* :mod:`repro.bdd` — exact analysis via binary decision diagrams.
* :mod:`repro.ctmc` — Markov chains, transient solvers, simulation.
* :mod:`repro.eventtree` — event-tree sequences on top of fault trees.
* :mod:`repro.models` — the paper's experiment models and generators.
* :mod:`repro.robust` — budgets, degradation ladder, checkpoint/resume
  and run-health reporting for production-scale runs.
"""

from repro.core import (
    AnalysisOptions,
    AnalysisResult,
    DynamicBasicEvent,
    SdFaultTree,
    SdFaultTreeBuilder,
    TriggerClass,
    analyze,
    analyze_exact,
    analyze_static,
)
from repro.ft import FaultTree, FaultTreeBuilder

__version__ = "1.0.0"

__all__ = [
    "AnalysisOptions",
    "AnalysisResult",
    "DynamicBasicEvent",
    "FaultTree",
    "FaultTreeBuilder",
    "SdFaultTree",
    "SdFaultTreeBuilder",
    "TriggerClass",
    "analyze",
    "analyze_exact",
    "analyze_static",
    "__version__",
]
