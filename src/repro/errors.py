"""Exception hierarchy for the :mod:`repro` package.

All errors raised by this library derive from :class:`ReproError`, so a
caller can catch one type to handle any library failure.  The subclasses
distinguish the three broad phases in which things can go wrong:

* building a model (:class:`ModelError` and its children),
* running an algorithm on a structurally valid model
  (:class:`AnalysisError`), and
* numerical trouble inside a solver (:class:`NumericalError`).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by this library."""


class ModelError(ReproError):
    """A model is structurally invalid or being built inconsistently."""


class DuplicateNameError(ModelError):
    """Two nodes in one model were given the same name."""


class UnknownNodeError(ModelError):
    """A node name was referenced but never defined."""


class CyclicModelError(ModelError):
    """The fault-tree DAG (or its trigger-extended graph) contains a cycle."""


class InvalidProbabilityError(ModelError):
    """A probability parameter is outside ``[0, 1]``."""


class InvalidRateError(ModelError):
    """A transition rate is negative or otherwise meaningless."""


class TriggerError(ModelError):
    """The triggering structure of an SD fault tree violates an invariant.

    Raised for untriggerable chains (a triggered event whose CTMC has no
    on/off structure), multiply-triggered events, or cyclic triggering.
    """


class AnalysisError(ReproError):
    """An analysis algorithm cannot proceed on this (valid) model."""


class CutoffError(AnalysisError):
    """The cutset search exceeded its configured work limits."""


class NumericalError(ReproError):
    """A numerical routine failed to reach the requested accuracy."""
