"""Exception hierarchy for the :mod:`repro` package.

All errors raised by this library derive from :class:`ReproError`, so a
caller can catch one type to handle any library failure.  The subclasses
distinguish the three broad phases in which things can go wrong:

* building a model (:class:`ModelError` and its children),
* running an algorithm on a structurally valid model
  (:class:`AnalysisError`), and
* numerical trouble inside a solver (:class:`NumericalError`).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by this library."""


class ModelError(ReproError):
    """A model is structurally invalid or being built inconsistently."""


class DuplicateNameError(ModelError):
    """Two nodes in one model were given the same name."""


class UnknownNodeError(ModelError):
    """A node name was referenced but never defined."""


class CyclicModelError(ModelError):
    """The fault-tree DAG (or its trigger-extended graph) contains a cycle."""


class InvalidProbabilityError(ModelError):
    """A probability parameter is outside ``[0, 1]``."""


class InvalidRateError(ModelError):
    """A transition rate is negative or otherwise meaningless."""


class TriggerError(ModelError):
    """The triggering structure of an SD fault tree violates an invariant.

    Raised for untriggerable chains (a triggered event whose CTMC has no
    on/off structure), multiply-triggered events, or cyclic triggering.
    """


class LintError(ModelError):
    """The model linter rejected a model with error-level diagnostics.

    Raised by :func:`repro.core.analyzer.analyze` when
    ``AnalysisOptions(lint=True)`` finds error-level diagnostics before
    the pipeline runs.  ``report`` carries the full
    :class:`~repro.lint.engine.LintReport` so callers can render every
    finding, not just the message.
    """

    def __init__(self, message: str, report=None) -> None:
        super().__init__(message)
        self.report = report


class AnalysisError(ReproError):
    """An analysis algorithm cannot proceed on this (valid) model."""


class CutoffError(AnalysisError):
    """The cutset search exceeded its configured work limits."""


class NumericalError(ReproError):
    """A numerical routine failed to reach the requested accuracy."""


class BudgetExceededError(AnalysisError):
    """A cooperative resource budget ran out mid-analysis.

    Raised by budget checks inside MOCUS, the transient solver and the
    quantification loop (:mod:`repro.robust.budget`).  ``stage`` names
    the pipeline stage that hit the limit and ``partial`` optionally
    carries the work completed so far (e.g. a truncated MOCUS result),
    so callers can convert the interruption into a partial result with a
    conservative remainder bound instead of a crash.
    """

    def __init__(self, message: str, stage: str = "", partial=None) -> None:
        super().__init__(message)
        self.stage = stage
        self.partial = partial


class CheckpointError(AnalysisError):
    """A checkpoint file is unreadable or does not match the model."""


class ServiceError(AnalysisError):
    """A request to the analysis service could not be processed.

    Covers malformed protocol requests, references to unknown sessions
    and lifecycle misuse (e.g. ``reanalyze`` before any analysis).
    Raised loudly — the daemon converts it into an error *response*,
    never a silent default.
    """


class JournalError(ServiceError):
    """The service journal is corrupted beyond safe replay.

    A torn trailing record is the expected artifact of a crash and is
    tolerated (with a recovery note); a corrupt *interior* record means
    the journal cannot be trusted and raises this instead of replaying
    a guess.
    """


class BddBudgetExceeded(AnalysisError):
    """A BDD compilation grew past its node budget.

    Raised by :class:`repro.bdd.engine.BddManager` when creating one
    more node would exceed the manager's configured ``node_budget``.
    The signal is clean by design: callers (the static-engine selection
    in :mod:`repro.core.analyzer`, the differential cross-check oracle)
    catch it and fall back to cutset quantification instead of letting
    an exponential-in-the-worst-case compilation eat the machine.
    """


class InvariantViolation(AnalysisError):
    """A runtime self-check of the pipeline found an impossible value.

    Raised by the stage-boundary guards of :mod:`repro.robust.verify`
    (``AnalysisOptions(verify="cheap"|"full")``) when an internal
    invariant fails: a non-finite or out-of-range probability, a
    transient distribution that lost mass, an interval whose ends are
    out of order, or a per-cutset value above its static worst-case
    bound.  Deliberately a subclass of :class:`AnalysisError`, so a
    per-cutset violation routes into the degradation ladder (the cutset
    is re-answered conservatively) instead of propagating garbage —
    while a violation at a stage boundary fails the run loudly.
    """


class CrosscheckError(InvariantViolation):
    """Two independent computations of the same quantity disagree.

    Raised by :mod:`repro.robust.crosscheck` (``verify="full"``) when a
    differential check fails: an in-process re-quantification disagrees
    with a pool result, the static MCS sum disagrees with the exact BDD
    engine, or a ladder rung's interval does not bracket the rung above
    it.  Always loud — a failed cross-check means the engine is
    internally inconsistent, not that one cutset is hard.
    """


class InjectedFaultError(ReproError):
    """Default error raised by the fault-injection hook in tests.

    Deliberately *outside* the error families the degradation ladder
    recovers from unless a specific error type is injected — tests
    choose the type via :func:`repro.robust.faults.inject`.
    """


class DegradedResultWarning(UserWarning):
    """A result was produced by a fallback strategy, not the exact solver.

    Emitted (never raised) when per-cutset fault isolation substitutes a
    cheaper rung of the degradation ladder; the structured counterpart
    lives in the run-health report (:mod:`repro.robust.health`).
    """
