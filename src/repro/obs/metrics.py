"""Counters and histograms for the analysis pipeline.

A :class:`MetricsRegistry` aggregates two metric kinds:

* **counters** — monotone totals (``metrics.count(name, n)``): MOCUS
  expansions and cutoff drops, dedup hits/misses, uniformization
  early exits, ladder descents, budget charges;
* **histograms** — per-observation summaries (``metrics.observe(name,
  value)``) kept as count/total/min/max: uniformization series terms,
  pool queue waits, per-task solve times.

Design rule for the hot loops: instrumented code never calls the
registry from inside an inner loop — MOCUS and the uniformization
series aggregate into local variables (they already did, for their own
stats) and emit **once per run or per solve**.  That, plus the shared
no-op :data:`NULL_METRICS` singleton, is what keeps the disabled-path
overhead under the 2% budget asserted by
``benchmarks/bench_obs_overhead.py``.

Worker processes run their own registry and ship
:meth:`MetricsRegistry.snapshot` dictionaries back with their results;
:meth:`MetricsRegistry.merge_snapshot` folds them into the parent's so
serial and parallel runs report identical totals for the deterministic
(analysis-derived) metrics.
"""

from __future__ import annotations

__all__ = ["NULL_METRICS", "MetricsRegistry", "NullMetrics"]


class NullMetrics:
    """The disabled registry: every method is a no-op."""

    enabled = False

    def count(self, name: str, n: float = 1) -> None:
        """Discard a counter increment."""
        return None

    def observe(self, name: str, value: float) -> None:
        """Discard a histogram observation."""
        return None

    def merge_snapshot(self, snapshot: dict | None) -> None:
        """Discard a shipped worker snapshot."""
        return None

    def snapshot(self) -> dict:
        """An empty snapshot."""
        return {"counters": {}, "histograms": {}}


NULL_METRICS = NullMetrics()


class MetricsRegistry:
    """A collecting registry for one run (or one worker's share of it)."""

    enabled = True

    def __init__(self) -> None:
        self._counters: dict[str, float] = {}
        # name -> [count, total, min, max]
        self._histograms: dict[str, list[float]] = {}

    def count(self, name: str, n: float = 1) -> None:
        """Add ``n`` to the counter ``name`` (created at zero)."""
        self._counters[name] = self._counters.get(name, 0) + n

    def observe(self, name: str, value: float) -> None:
        """Record one observation into the histogram ``name``."""
        value = float(value)
        entry = self._histograms.get(name)
        if entry is None:
            self._histograms[name] = [1, value, value, value]
        else:
            entry[0] += 1
            entry[1] += value
            if value < entry[2]:
                entry[2] = value
            if value > entry[3]:
                entry[3] = value

    def counter(self, name: str) -> float:
        """Current value of a counter (0 if never incremented)."""
        return self._counters.get(name, 0)

    def snapshot(self) -> dict:
        """A plain-data copy: ``{"counters": ..., "histograms": ...}``.

        Histogram entries are ``{"count", "total", "min", "max"}``
        dicts.  The snapshot is JSON- and pickle-friendly, so it can be
        shipped across process boundaries and merged with
        :meth:`merge_snapshot`.
        """
        return {
            "counters": dict(self._counters),
            "histograms": {
                name: {
                    "count": int(entry[0]),
                    "total": entry[1],
                    "min": entry[2],
                    "max": entry[3],
                }
                for name, entry in self._histograms.items()
            },
        }

    def merge_snapshot(self, snapshot: dict | None) -> None:
        """Fold a :meth:`snapshot` (e.g. from a worker) into this registry."""
        if not snapshot:
            return
        for name, value in snapshot.get("counters", {}).items():
            self.count(name, value)
        for name, entry in snapshot.get("histograms", {}).items():
            mine = self._histograms.get(name)
            if mine is None:
                self._histograms[name] = [
                    entry["count"], entry["total"], entry["min"], entry["max"],
                ]
            else:
                mine[0] += entry["count"]
                mine[1] += entry["total"]
                if entry["min"] < mine[2]:
                    mine[2] = entry["min"]
                if entry["max"] > mine[3]:
                    mine[3] = entry["max"]
