"""Nested span tracing with a zero-cost disabled path.

A *span* is one timed region of the pipeline — the whole analysis, one
phase, one chain solve, one pool task — recorded with wall-clock and
CPU time plus free-form attributes.  Spans nest through the context
manager protocol::

    with tracer.span("quantify.solve", cutset="a+b") as span:
        ...
        span.set(chain_states=42, probability=p)

Two implementations share the interface:

* :class:`Tracer` collects :class:`SpanRecord` entries (used when a
  run is traced);
* :data:`NULL_TRACER` is a shared singleton whose :meth:`~Tracer.span`
  returns one shared no-op span — entering/exiting it does nothing, so
  instrumented code pays only an attribute lookup and an empty call
  when tracing is off.

Worker processes build their own tracer (with an id ``prefix`` so span
ids never collide with the parent's) and ship their records back inside
the pool results; :meth:`Tracer.add_foreign` grafts them under the
parent's current span.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field

__all__ = ["NULL_TRACER", "NullTracer", "SpanRecord", "Tracer"]


@dataclass
class SpanRecord:
    """One finished span.

    ``t0`` is the wall-clock start (``time.time()``, seconds since the
    epoch — comparable across processes); ``wall_seconds`` and
    ``cpu_seconds`` are the span's durations; ``span_id`` is unique
    within one trace and ``parent_id`` links the nesting (``None`` for
    a root span).  ``attrs`` carries whatever the instrumentation
    attached (cutset names, chain sizes, probabilities, error kinds).
    """

    name: str
    t0: float
    wall_seconds: float
    cpu_seconds: float
    span_id: str
    parent_id: str | None
    depth: int
    attrs: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        """The JSONL line payload of this span (see :mod:`repro.obs.export`)."""
        return {
            "type": "span",
            "name": self.name,
            "t0": self.t0,
            "wall": self.wall_seconds,
            "cpu": self.cpu_seconds,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "depth": self.depth,
            "attrs": self.attrs,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "SpanRecord":
        """Rebuild a record from its JSONL payload (worker shipping)."""
        return cls(
            name=payload["name"],
            t0=payload["t0"],
            wall_seconds=payload["wall"],
            cpu_seconds=payload["cpu"],
            span_id=payload["span_id"],
            parent_id=payload.get("parent_id"),
            depth=payload.get("depth", 0),
            attrs=dict(payload.get("attrs", {})),
        )


class _NullSpan:
    """The shared do-nothing span handed out while tracing is off."""

    __slots__ = ()

    def set(self, **attrs: object) -> None:
        return None

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The disabled tracer: every span is the shared no-op span."""

    enabled = False

    def span(self, name: str, **attrs: object) -> _NullSpan:
        """A no-op span (shared singleton; enter/exit do nothing)."""
        return _NULL_SPAN

    def add_foreign(
        self, payloads: list[dict], parent_id: str | None = None
    ) -> None:
        """Discard shipped worker spans."""
        return None

    def records(self) -> list[SpanRecord]:
        """No records are ever collected."""
        return []

    @property
    def current_id(self) -> str | None:
        """There is never an open span."""
        return None


NULL_TRACER = NullTracer()


class _Span:
    """A live (collecting) span; created by :meth:`Tracer.span`."""

    __slots__ = ("_tracer", "_name", "_attrs", "_t0", "_wall0", "_cpu0",
                 "_span_id", "_parent_id", "_depth")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict) -> None:
        self._tracer = tracer
        self._name = name
        self._attrs = attrs

    def set(self, **attrs: object) -> None:
        """Attach (or overwrite) attributes on the span."""
        self._attrs.update(attrs)

    def __enter__(self) -> "_Span":
        tracer = self._tracer
        self._parent_id = tracer.current_id
        self._depth = len(tracer._stack)
        self._span_id = tracer._next_id()
        tracer._stack.append(self._span_id)
        self._t0 = time.time()
        self._wall0 = time.perf_counter()
        self._cpu0 = time.process_time()
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: object,
    ) -> bool:
        tracer = self._tracer
        wall = time.perf_counter() - self._wall0
        cpu = time.process_time() - self._cpu0
        tracer._stack.pop()
        if exc_type is not None:
            self._attrs.setdefault("error", exc_type.__name__)
        tracer._records.append(
            SpanRecord(
                self._name,
                self._t0,
                wall,
                cpu,
                self._span_id,
                self._parent_id,
                self._depth,
                self._attrs,
            )
        )
        return False


class Tracer:
    """A collecting tracer for one run (or one worker's share of it).

    ``prefix`` namespaces the generated span ids — worker tracers use
    ``"t<task_id>."`` so their records can be merged into the parent's
    trace without id collisions.  Not thread-safe: one tracer belongs
    to one process's analysis loop.
    """

    enabled = True

    def __init__(self, prefix: str = "") -> None:
        self._prefix = prefix
        self._counter = 0
        self._records: list[SpanRecord] = []
        self._stack: list[str] = []
        self.pid = os.getpid()

    def _next_id(self) -> str:
        self._counter += 1
        return f"{self._prefix}{self._counter}"

    @property
    def current_id(self) -> str | None:
        """Id of the innermost open span, or ``None`` outside any span."""
        return self._stack[-1] if self._stack else None

    def span(self, name: str, **attrs: object) -> _Span:
        """A new span; use as a context manager around the timed region."""
        return _Span(self, name, dict(attrs))

    def records(self) -> list[SpanRecord]:
        """All finished spans, in completion order."""
        return list(self._records)

    def add_foreign(
        self, payloads: list[dict], parent_id: str | None = None
    ) -> None:
        """Graft spans shipped from another process into this trace.

        ``payloads`` are span dicts (:meth:`SpanRecord.to_dict`); roots
        of the shipped batch (records without a parent) are attached
        under ``parent_id`` and every depth is shifted below it.
        """
        if not payloads:
            return
        base_depth = 0
        if parent_id is not None:
            for record in self._records:
                if record.span_id == parent_id:
                    base_depth = record.depth + 1
                    break
            else:
                # Parent still open: its depth is its position on the stack.
                if parent_id in self._stack:
                    base_depth = self._stack.index(parent_id) + 1
        for payload in payloads:
            record = SpanRecord.from_dict(dict(payload))
            if record.parent_id is None:
                record.parent_id = parent_id
            record.depth += base_depth
            self._records.append(record)
