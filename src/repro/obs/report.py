"""Render traces and metric snapshots for humans.

Two consumers:

* the ``sdft trace FILE`` subcommand —
  :func:`render_trace_report` summarises a JSONL trace into a per-span
  cost table (count, total/mean/max wall, CPU, share of the root
  span's wall time) followed by the recorded metrics;
* the run summary and health report —
  :func:`metric_highlights` picks the handful of metric lines worth
  printing after every traced/metered run (MOCUS work, dedup ratio,
  series terms, pool queue waits and recovery actions, verification
  checks, ladder descents, budget charges).
"""

from __future__ import annotations

import json

__all__ = ["metric_highlights", "render_trace_report", "summarize_spans"]


def load_trace(
    path: str,
) -> tuple[dict, list[dict], dict[str, float], dict[str, dict]]:
    """Parse a JSONL trace into ``(meta, spans, counters, histograms)``."""
    meta: dict = {}
    spans: list[dict] = []
    counters: dict[str, float] = {}
    histograms: dict[str, dict] = {}
    with open(path, encoding="utf-8") as handle:
        for raw in handle:
            raw = raw.strip()
            if not raw:
                continue
            line = json.loads(raw)
            kind = line.get("type")
            if kind == "meta":
                meta = line
            elif kind == "span":
                spans.append(line)
            elif kind == "counter":
                counters[line["name"]] = line["value"]
            elif kind == "histogram":
                histograms[line["name"]] = line
    return meta, spans, counters, histograms


def summarize_spans(spans: list[dict]) -> list[dict]:
    """Aggregate spans by name: count and wall/CPU totals and extremes.

    Returned rows are sorted by descending total wall time; each row
    carries ``name, count, wall, cpu, mean, max, share`` where
    ``share`` is the fraction of the root spans' wall time (1.0 when
    there is no root to compare against).
    """
    groups: dict[str, dict] = {}
    for span in spans:
        row = groups.setdefault(
            span["name"],
            {"name": span["name"], "count": 0, "wall": 0.0, "cpu": 0.0,
             "max": 0.0, "depth": span.get("depth", 0)},
        )
        row["count"] += 1
        row["wall"] += span["wall"]
        row["cpu"] += span["cpu"]
        if span["wall"] > row["max"]:
            row["max"] = span["wall"]
        if span.get("depth", 0) < row["depth"]:
            row["depth"] = span.get("depth", 0)
    root_wall = sum(s["wall"] for s in spans if s.get("parent_id") is None)
    rows = sorted(groups.values(), key=lambda row: -row["wall"])
    for row in rows:
        row["mean"] = row["wall"] / row["count"]
        row["share"] = row["wall"] / root_wall if root_wall > 0.0 else 1.0
    return rows


def render_trace_report(path: str) -> str:
    """The full ``sdft trace`` output for one trace file."""
    meta, spans, counters, histograms = load_trace(path)
    lines = [f"trace: {path} ({meta.get('schema', '?')})"]
    attrs = meta.get("attrs") or {}
    if attrs:
        described = ", ".join(f"{k}={v}" for k, v in sorted(attrs.items()))
        lines.append(f"run: {described}")
    lines.append("")
    if spans:
        lines.append(
            f"{'span':32s} {'count':>7s} {'wall (s)':>10s} {'cpu (s)':>10s} "
            f"{'mean (s)':>10s} {'max (s)':>10s} {'share':>7s}"
        )
        for row in summarize_spans(spans):
            lines.append(
                f"{row['name']:32s} {row['count']:7d} {row['wall']:10.4f} "
                f"{row['cpu']:10.4f} {row['mean']:10.4f} {row['max']:10.4f} "
                f"{row['share']:7.1%}"
            )
    else:
        lines.append("no spans recorded")
    if counters or histograms:
        lines.append("")
        lines.append("metrics:")
        for name in sorted(counters):
            lines.append(f"  {name} = {counters[name]:g}")
        for name in sorted(histograms):
            entry = histograms[name]
            mean = entry["total"] / entry["count"] if entry["count"] else 0.0
            lines.append(
                f"  {name}: n={entry['count']} mean={mean:g} "
                f"min={entry['min']:g} max={entry['max']:g}"
            )
    return "\n".join(lines)


def metric_highlights(snapshot: dict | None) -> list[str]:
    """The metric lines the run summary prints for a metered run.

    Picks only the metrics that exist in the snapshot, so a serial run
    shows no pool lines and an unbudgeted run no budget lines.
    """
    if not snapshot:
        return []
    counters = snapshot.get("counters", {})
    histograms = snapshot.get("histograms", {})
    lines: list[str] = []

    rewrites = counters.get("sem.rewrites")
    if rewrites is not None:
        lines.append(
            f"sem: {rewrites:g} verified rewrites "
            f"(-{counters.get('sem.removed_gates', 0):g} gates, "
            f"-{counters.get('sem.removed_events', 0):g} events, "
            f"{counters.get('sem.verified_scopes', 0):g} scopes proved, "
            f"{counters.get('sem.budget_trips', 0):g} budget trips)"
        )
    expanded = counters.get("mocus.partials_expanded")
    if expanded is not None:
        lines.append(
            f"mocus: {expanded:g} expansions, "
            f"{counters.get('mocus.partials_cut_off', 0):g} cut off, "
            f"{counters.get('mocus.partials_deduplicated', 0):g} deduplicated, "
            f"{counters.get('mocus.partials_subsumed', 0):g} subsumed"
        )
    hits = counters.get("quantify.dedup_hits")
    misses = counters.get("quantify.dedup_misses")
    if hits is not None or misses is not None:
        hits = hits or 0
        misses = misses or 0
        total = hits + misses
        ratio = hits / total if total else 0.0
        lines.append(
            f"dedup: {hits:g} hits / {misses:g} misses ({ratio:.0%} shared)"
        )
    terms = histograms.get("transient.series_terms")
    if terms is not None:
        mean = terms["total"] / terms["count"] if terms["count"] else 0.0
        lines.append(
            f"uniformization: {terms['count']} solves, "
            f"mean {mean:.1f} series terms (max {terms['max']:g}), "
            f"{counters.get('transient.early_exit', 0):g} early exits"
        )
    queue = histograms.get("pool.queue_wait_seconds")
    if queue is not None:
        mean = queue["total"] / queue["count"] if queue["count"] else 0.0
        lines.append(
            f"pool: {queue['count']} tasks, queue wait mean {mean:.3f}s "
            f"(max {queue['max']:.3f}s), "
            f"{counters.get('pool.worker_faults', 0):g} worker faults"
        )
    batches = counters.get("pool.batches")
    if batches:
        sizes = histograms.get("pool.batch_size")
        line = f"batching: {batches:g} batches"
        if sizes and sizes["count"]:
            line += (
                f", mean {sizes['total'] / sizes['count']:.1f} tasks/batch "
                f"(max {sizes['max']:g})"
            )
        lines.append(line)
    recovery = {
        kind: counters.get(f"pool.{kind}", 0)
        for kind in ("rebuilds", "timeouts", "retries", "quarantined", "probes")
    }
    if any(recovery.values()):
        lines.append(
            "pool recovery: "
            + ", ".join(f"{count:g} {kind}" for kind, count in recovery.items())
        )
    checks = counters.get("verify.checks")
    if checks is not None:
        lines.append(
            f"verify: {checks:g} invariant checks, "
            f"{counters.get('verify.violations', 0):g} violations"
        )
    descents = counters.get("ladder.descents")
    if descents:
        lines.append(
            f"ladder: {descents:g} descents, "
            f"{counters.get('ladder.attempts_failed', 0):g} failed rungs"
        )
    mc_runs = counters.get("mc.runs")
    if mc_runs:
        engines = ", ".join(
            f"{counters[key]:g}x {key.removeprefix('mc.engine.')}"
            for key in sorted(counters)
            if key.startswith("mc.engine.")
        )
        line = f"monte-carlo: {mc_runs:g} trajectories"
        if engines:
            line += f" ({engines})"
        achieved = histograms.get("mc.achieved_rel_error")
        if achieved and achieved["count"]:
            line += (
                f", achieved rel. error mean "
                f"{achieved['total'] / achieved['count']:.3g} "
                f"(worst {achieved['max']:.3g})"
            )
        lines.append(line)
    cache_keys = [key for key in counters if key.startswith("cache.")]
    if cache_keys:
        solve_hits = counters.get("cache.solve_hits", 0)
        solve_misses = counters.get("cache.solve_misses", 0)
        line = (
            f"cache: {solve_hits:g} solve hits / {solve_misses:g} misses, "
            f"{counters.get('cache.mocus_hits', 0):g} mocus hits, "
            f"{counters.get('cache.records_hits', 0):g} record hits"
        )
        errors = counters.get("cache.errors", 0)
        if errors:
            line += f", {errors:g} errors (served as misses)"
        lines.append(line)
    states = counters.get("budget.states_charged")
    if states is not None or counters.get("budget.cutsets_charged") is not None:
        lines.append(
            f"budget: {states or 0:g} chain states charged, "
            f"{counters.get('budget.cutsets_charged', 0):g} cutsets charged"
        )
    return lines
