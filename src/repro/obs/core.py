"""The observability bundle threaded through the pipeline.

One :class:`Observability` object pairs a tracer with a metrics
registry so instrumented code takes a single optional parameter.  The
module-level :data:`NULL_OBS` singleton is the disabled bundle every
call site defaults to — resolving ``obs = obs or NULL_OBS`` and calling
into it costs a couple of attribute lookups and empty calls, nothing
more.
"""

from __future__ import annotations

from repro.obs.metrics import NULL_METRICS, MetricsRegistry, NullMetrics
from repro.obs.trace import NULL_TRACER, NullTracer, Tracer

__all__ = ["NULL_OBS", "Observability"]


class Observability:
    """A tracer plus a metrics registry, enabled or not as one unit."""

    def __init__(
        self,
        tracer: Tracer | NullTracer = NULL_TRACER,
        metrics: MetricsRegistry | NullMetrics = NULL_METRICS,
    ) -> None:
        self.tracer = tracer
        self.metrics = metrics

    @property
    def enabled(self) -> bool:
        """Whether anything is being collected at all."""
        return self.tracer.enabled or self.metrics.enabled

    @classmethod
    def collecting(cls, prefix: str = "") -> "Observability":
        """A fully-enabled bundle (worker tracers pass an id ``prefix``)."""
        return cls(Tracer(prefix=prefix), MetricsRegistry())

    @classmethod
    def from_options(
        cls, trace_path: str | None, collect_metrics: bool
    ) -> "Observability":
        """The bundle an analysis run needs for its options.

        Either knob enables both collectors: a trace file always embeds
        the metric lines, and metric collection reuses the span
        plumbing, so partial enablement would only complicate the
        call sites for no saving that matters (collection is cheap;
        only the *disabled* path is performance-critical).
        """
        if trace_path or collect_metrics:
            return cls.collecting()
        return NULL_OBS

    def __repr__(self) -> str:
        state = "collecting" if self.enabled else "disabled"
        return f"Observability({state})"


NULL_OBS = Observability()
