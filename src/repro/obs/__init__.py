"""Observability for the analysis pipeline: spans, metrics, traces.

The paper's whole argument is a cost profile — per-cutset quantification
must stay cheap enough that a run is dominated by static cutset
generation (Sections V-C and VI).  This package makes that profile
*measurable* on every run:

* :mod:`repro.obs.trace` — nested context-manager **spans** recording
  wall and CPU time plus attributes, no-op by default;
* :mod:`repro.obs.metrics` — a **metrics registry** of counters and
  histograms fed by every pipeline stage (MOCUS expansions and cutoff
  drops, dedup hits/misses, uniformization series terms, pool queue
  waits, ladder descents, budget charges);
* :mod:`repro.obs.core` — the :class:`~repro.obs.core.Observability`
  bundle threaded through the pipeline (``NULL_OBS`` when disabled);
* :mod:`repro.obs.export` — the JSONL trace format and its schema
  validator;
* :mod:`repro.obs.report` — the ``sdft trace`` cost-table renderer and
  the run-summary metric highlights.

Disabled observability is the default and costs nearly nothing: hot
loops aggregate into local counters and emit once per solve or per run,
and the null tracer/registry are shared singletons whose methods are
empty (``benchmarks/bench_obs_overhead.py`` asserts the ≤2% bound on
the quantification hot loop).
"""

from repro.obs.core import NULL_OBS, Observability
from repro.obs.export import (
    TRACE_SCHEMA,
    validate_trace_file,
    validate_trace_lines,
    write_trace,
)
from repro.obs.metrics import NULL_METRICS, MetricsRegistry
from repro.obs.report import metric_highlights, render_trace_report
from repro.obs.trace import NULL_TRACER, SpanRecord, Tracer

__all__ = [
    "NULL_METRICS",
    "NULL_OBS",
    "NULL_TRACER",
    "MetricsRegistry",
    "Observability",
    "SpanRecord",
    "TRACE_SCHEMA",
    "Tracer",
    "metric_highlights",
    "render_trace_report",
    "validate_trace_file",
    "validate_trace_lines",
    "write_trace",
]
