"""The JSONL trace format and its schema validator.

A trace file is one JSON object per line:

* line 1 — a ``meta`` header::

      {"type": "meta", "schema": "repro-trace/1", "tool": "repro",
       "attrs": {...}}

* any number of ``span`` lines (see
  :meth:`repro.obs.trace.SpanRecord.to_dict`)::

      {"type": "span", "name": "quantify.solve", "t0": ..., "wall": ...,
       "cpu": ..., "span_id": "7", "parent_id": "3", "depth": 2,
       "attrs": {"cutset": "a+b", "chain_states": 12}}

* any number of metric lines::

      {"type": "counter", "name": "mocus.partials_expanded", "value": 4821}
      {"type": "histogram", "name": "transient.series_terms",
       "count": 31, "total": 812.0, "min": 9.0, "max": 64.0}

The validator is hand-rolled (no external schema dependency) and is the
one CI runs against every traced smoke analysis; it raises
:class:`ValueError` naming the offending line.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from collections.abc import Iterable

    from repro.obs.trace import SpanRecord

__all__ = [
    "TRACE_SCHEMA",
    "validate_trace_file",
    "validate_trace_lines",
    "write_trace",
]

#: Schema identifier stamped into (and required of) the meta header.
TRACE_SCHEMA = "repro-trace/1"

_SPAN_FIELDS = {
    "name": str,
    "t0": (int, float),
    "wall": (int, float),
    "cpu": (int, float),
    "span_id": str,
    "depth": int,
    "attrs": dict,
}

_HISTOGRAM_FIELDS = {
    "name": str,
    "count": int,
    "total": (int, float),
    "min": (int, float),
    "max": (int, float),
}


def write_trace(
    path: str,
    span_records: "Iterable[SpanRecord]",
    metrics_snapshot: dict | None,
    attrs: dict | None = None,
) -> int:
    """Write a schema-valid trace file; returns the number of lines.

    ``span_records`` are :class:`~repro.obs.trace.SpanRecord` objects,
    ``metrics_snapshot`` a :meth:`~repro.obs.metrics.MetricsRegistry.snapshot`
    dict, ``attrs`` optional run metadata embedded in the header.
    """
    lines = [
        {
            "type": "meta",
            "schema": TRACE_SCHEMA,
            "tool": "repro",
            "attrs": dict(attrs or {}),
        }
    ]
    lines.extend(record.to_dict() for record in span_records)
    snapshot = metrics_snapshot or {}
    for name in sorted(snapshot.get("counters", {})):
        lines.append(
            {"type": "counter", "name": name,
             "value": snapshot["counters"][name]}
        )
    for name in sorted(snapshot.get("histograms", {})):
        entry = snapshot["histograms"][name]
        lines.append(
            {"type": "histogram", "name": name, "count": entry["count"],
             "total": entry["total"], "min": entry["min"], "max": entry["max"]}
        )
    with open(path, "w", encoding="utf-8") as handle:
        for line in lines:
            handle.write(json.dumps(line, sort_keys=True))
            handle.write("\n")
    return len(lines)


def validate_trace_lines(lines: list) -> dict:
    """Validate parsed JSONL payloads against the trace schema.

    Returns ``{"spans": n, "counters": n, "histograms": n}`` on
    success; raises :class:`ValueError` describing the first violation.
    Checks the header, per-type required fields and types, non-negative
    durations, and that every ``parent_id`` names a span present in the
    file (roots carry ``null``).
    """
    lines = list(lines)
    if not lines:
        raise ValueError("empty trace: missing meta header")
    header = lines[0]
    if not isinstance(header, dict) or header.get("type") != "meta":
        raise ValueError("line 1: expected the meta header")
    if header.get("schema") != TRACE_SCHEMA:
        raise ValueError(
            f"line 1: unsupported schema {header.get('schema')!r} "
            f"(expected {TRACE_SCHEMA!r})"
        )

    span_ids: set[str] = set()
    parents: list[tuple[int, str]] = []
    counts = {"spans": 0, "counters": 0, "histograms": 0}
    for number, line in enumerate(lines[1:], start=2):
        if not isinstance(line, dict):
            raise ValueError(f"line {number}: not a JSON object")
        kind = line.get("type")
        if kind == "span":
            _require(line, _SPAN_FIELDS, number)
            if line["wall"] < 0 or line["cpu"] < 0 or line["depth"] < 0:
                raise ValueError(
                    f"line {number}: negative duration or depth in span "
                    f"{line['name']!r}"
                )
            if line["span_id"] in span_ids:
                raise ValueError(
                    f"line {number}: duplicate span_id {line['span_id']!r}"
                )
            span_ids.add(line["span_id"])
            parent = line.get("parent_id")
            if parent is not None:
                if not isinstance(parent, str):
                    raise ValueError(
                        f"line {number}: parent_id must be a string or null"
                    )
                parents.append((number, parent))
            counts["spans"] += 1
        elif kind == "counter":
            if not isinstance(line.get("name"), str):
                raise ValueError(f"line {number}: counter needs a string name")
            if not isinstance(line.get("value"), (int, float)):
                raise ValueError(
                    f"line {number}: counter {line.get('name')!r} needs a "
                    f"numeric value"
                )
            counts["counters"] += 1
        elif kind == "histogram":
            _require(line, _HISTOGRAM_FIELDS, number)
            if line["count"] < 0 or line["min"] > line["max"]:
                raise ValueError(
                    f"line {number}: inconsistent histogram "
                    f"{line['name']!r}"
                )
            counts["histograms"] += 1
        elif kind == "meta":
            raise ValueError(f"line {number}: duplicate meta header")
        else:
            raise ValueError(f"line {number}: unknown line type {kind!r}")

    for number, parent in parents:
        if parent not in span_ids:
            raise ValueError(
                f"line {number}: parent_id {parent!r} names no span in "
                f"this trace"
            )
    return counts


def validate_trace_file(path: str) -> dict:
    """Parse and validate a trace file; see :func:`validate_trace_lines`."""
    lines: list = []
    with open(path, encoding="utf-8") as handle:
        for number, raw in enumerate(handle, start=1):
            raw = raw.strip()
            if not raw:
                continue
            try:
                lines.append(json.loads(raw))
            except json.JSONDecodeError as error:
                raise ValueError(f"line {number}: invalid JSON ({error})") from None
    return validate_trace_lines(lines)


def _require(line: dict, fields: dict, number: int) -> None:
    for name, types in fields.items():
        if name not in line:
            raise ValueError(
                f"line {number}: {line.get('type')} line missing {name!r}"
            )
        if not isinstance(line[name], types):
            raise ValueError(
                f"line {number}: field {name!r} has wrong type "
                f"{type(line[name]).__name__}"
            )
