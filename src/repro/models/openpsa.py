"""Open-PSA Model Exchange Format import/export (static fault trees).

The Open-PSA MEF is the vendor-neutral XML format nuclear PSA tools
(including RiskSpectrum, the tool of the paper's prototype) exchange
models in.  Supporting it makes this package interoperable with
existing study files.  Implemented subset — the fault-tree layer:

* ``<define-fault-tree>`` with ``<define-gate>`` definitions,
* gate formulas ``<and>``, ``<or>``, ``<atleast min="k">``,
  with ``<gate name=.../>`` and ``<basic-event name=.../>`` operands,
* ``<define-basic-event>`` with a constant ``<float value=.../>``
  probability (the static-tree subset; CTMC parameters are not part of
  the MEF and stay in this package's JSON format).

Documents are produced with :mod:`xml.etree.ElementTree` and parse back
through the same subset; anything outside the subset raises a
:class:`~repro.errors.ModelError` naming the unsupported construct, so
silently-dropped semantics cannot happen.
"""

from __future__ import annotations

from pathlib import Path
from xml.etree import ElementTree

from repro.errors import ModelError
from repro.ft.tree import BasicEvent, FaultTree, Gate, GateType

__all__ = ["to_openpsa_xml", "from_openpsa_xml", "save_openpsa", "load_openpsa"]

_FORMULA_TAGS = {"and": GateType.AND, "or": GateType.OR, "atleast": GateType.ATLEAST}


def to_openpsa_xml(tree: FaultTree) -> str:
    """Serialise a static fault tree to an Open-PSA MEF document."""
    root = ElementTree.Element("opsa-mef")
    ft_element = ElementTree.SubElement(
        root, "define-fault-tree", {"name": _xml_name(tree.name)}
    )
    for gate in tree.gates.values():
        gate_element = ElementTree.SubElement(
            ft_element, "define-gate", {"name": gate.name}
        )
        if gate.description:
            ElementTree.SubElement(gate_element, "label").text = gate.description
        attributes = {}
        if gate.gate_type is GateType.ATLEAST:
            assert gate.k is not None
            attributes["min"] = str(gate.k)
        formula = ElementTree.SubElement(
            gate_element, gate.gate_type.value, attributes
        )
        for child in gate.children:
            if tree.is_gate(child):
                ElementTree.SubElement(formula, "gate", {"name": child})
            else:
                ElementTree.SubElement(formula, "basic-event", {"name": child})
    data_element = ElementTree.SubElement(root, "model-data")
    for event in tree.events.values():
        event_element = ElementTree.SubElement(
            data_element, "define-basic-event", {"name": event.name}
        )
        if event.description:
            ElementTree.SubElement(event_element, "label").text = event.description
        ElementTree.SubElement(
            event_element, "float", {"value": repr(event.probability)}
        )
    ElementTree.indent(root)
    return ElementTree.tostring(root, encoding="unicode", xml_declaration=True)


def from_openpsa_xml(text: str, top: str | None = None) -> FaultTree:
    """Parse the supported Open-PSA subset back into a :class:`FaultTree`.

    ``top`` selects the top gate; by default the unique gate that no
    other gate references (ambiguity raises, naming the candidates).
    """
    try:
        root = ElementTree.fromstring(text)
    except ElementTree.ParseError as error:
        raise ModelError(f"not well-formed XML: {error}") from None
    if root.tag != "opsa-mef":
        raise ModelError(f"not an Open-PSA document: root element {root.tag!r}")

    fault_trees = root.findall("define-fault-tree")
    if len(fault_trees) != 1:
        raise ModelError(
            f"expected exactly one define-fault-tree, found {len(fault_trees)}"
        )
    ft_element = fault_trees[0]
    name = ft_element.get("name", "fault-tree")

    gates: list[Gate] = []
    for gate_element in ft_element.findall("define-gate"):
        gates.append(_parse_gate(gate_element))
    # Gates may also be defined at model level in some exports.
    for gate_element in root.findall("define-gate"):
        gates.append(_parse_gate(gate_element))

    events: list[BasicEvent] = []
    for data_element in root.findall("model-data"):
        for event_element in data_element.findall("define-basic-event"):
            events.append(_parse_basic_event(event_element))

    # Events referenced but never defined get probability 0 with a note —
    # rejecting instead: a silent 0 would corrupt every result.
    defined = {e.name for e in events} | {g.name for g in gates}
    for gate in gates:
        for child in gate.children:
            if child not in defined:
                raise ModelError(
                    f"gate {gate.name!r} references {child!r}, which has no "
                    f"define-gate or define-basic-event"
                )

    if top is None:
        referenced = {c for g in gates for c in g.children}
        candidates = [g.name for g in gates if g.name not in referenced]
        if len(candidates) != 1:
            raise ModelError(
                f"cannot infer the top gate (unreferenced gates: "
                f"{sorted(candidates)}); pass top= explicitly"
            )
        top = candidates[0]
    return FaultTree(top, events, gates, name=name)


def save_openpsa(tree: FaultTree, path: str | Path) -> None:
    """Write ``tree`` to an Open-PSA XML file."""
    Path(path).write_text(to_openpsa_xml(tree))


def load_openpsa(path: str | Path, top: str | None = None) -> FaultTree:
    """Load a fault tree from an Open-PSA XML file."""
    return from_openpsa_xml(Path(path).read_text(), top)


def _parse_gate(gate_element: ElementTree.Element) -> Gate:
    name = gate_element.get("name")
    if not name:
        raise ModelError("define-gate without a name attribute")
    description = ""
    label = gate_element.find("label")
    if label is not None and label.text:
        description = label.text
    formulas = [
        child for child in gate_element if child.tag in _FORMULA_TAGS
    ]
    if len(formulas) != 1:
        supported = ", ".join(sorted(_FORMULA_TAGS))
        raise ModelError(
            f"gate {name!r}: expected exactly one formula element "
            f"({supported}); found "
            f"{[c.tag for c in gate_element if c.tag != 'label']}"
        )
    formula = formulas[0]
    gate_type = _FORMULA_TAGS[formula.tag]
    k = None
    if gate_type is GateType.ATLEAST:
        raw = formula.get("min")
        if raw is None:
            raise ModelError(f"gate {name!r}: atleast formula without min")
        k = int(raw)
    children: list[str] = []
    for operand in formula:
        if operand.tag in ("gate", "basic-event", "house-event"):
            child = operand.get("name")
            if not child:
                raise ModelError(f"gate {name!r}: operand without a name")
            children.append(child)
        else:
            raise ModelError(
                f"gate {name!r}: unsupported operand <{operand.tag}> "
                f"(the coherent subset supports gate/basic-event references)"
            )
    return Gate(name, gate_type, tuple(children), k, description)


def _parse_basic_event(event_element: ElementTree.Element) -> BasicEvent:
    name = event_element.get("name")
    if not name:
        raise ModelError("define-basic-event without a name attribute")
    description = ""
    label = event_element.find("label")
    if label is not None and label.text:
        description = label.text
    value = event_element.find("float")
    if value is None or value.get("value") is None:
        raise ModelError(
            f"basic event {name!r}: only constant <float value=...> "
            f"probabilities are supported"
        )
    return BasicEvent(name, float(value.get("value")), description)


def _xml_name(name: str) -> str:
    """XML name attributes reject some characters model names may carry."""
    return name.replace(" ", "-")
