"""Importance-driven dynamization of static fault trees (Section VI-B).

The paper's industrial experiments start from real *static* studies and
enrich them mechanically:

* "the given percentage of events with the highest Fussell–Vesely
  importance factor is replaced" by dynamic basic events — dynamic
  behaviour goes first where it matters most;
* "we create triggering chains from dynamic basic events with the same
  Fussell–Vesely importance factor (chains with highest importance
  first)" — symmetric redundant components have identical importance,
  so equal-importance groups are exactly the redundancy groups, and
  chaining them models sequential demand (the top-left, static-branching
  pattern of Figure 1: one dynamic event directly triggering the next).

:func:`dynamize` implements both steps.  Replaced events keep their
static probability calibrated: the Erlang chain's worst-case failure
probability over the horizon equals the original static probability, so
the purely static re-analysis of the enriched model reproduces the
original result and every change in the dynamic analysis comes from
timing, repairs and triggers — not from re-parameterisation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.sdft import SdFaultTree, SdFaultTreeBuilder
from repro.ctmc.builders import erlang_failure, triggered_erlang
from repro.errors import ModelError
from repro.ft.cutsets import CutSetList
from repro.ft.importance import rank_by_fussell_vesely
from repro.ft.tree import FaultTree, GateType

__all__ = ["DynamizationPlan", "plan_dynamization", "dynamize"]

#: Gate-name suffix of the pass-through OR gates inserted as trigger sources.
TRIGGER_SOURCE_SUFFIX = "#chain-src"


@dataclass(frozen=True)
class DynamizationPlan:
    """Which events become dynamic and how they chain.

    ``dynamic_events`` is ordered by descending importance;
    ``chains`` lists the trigger chains, each an importance-equal group
    ordered so that element ``i`` triggers element ``i+1``.
    """

    dynamic_events: tuple[str, ...]
    chains: tuple[tuple[str, ...], ...]

    @property
    def n_triggered(self) -> int:
        """Number of events that receive a trigger (chain tails)."""
        return sum(len(chain) - 1 for chain in self.chains)


def plan_dynamization(
    cutsets: CutSetList,
    dynamic_fraction: float,
    triggered_fraction: float,
    importance_digits: int = 12,
) -> DynamizationPlan:
    """Choose events to dynamise and chain, by Fussell–Vesely ranking.

    ``dynamic_fraction`` of the ranked events (rounded down, at least
    one if the fraction is positive) become dynamic.  Chains are formed
    inside groups of equal FV importance (rounded to
    ``importance_digits`` significant digits), highest-importance groups
    first, until ``triggered_fraction`` of the *dynamic* events carry a
    trigger.
    """
    if not 0.0 <= dynamic_fraction <= 1.0:
        raise ModelError(f"dynamic_fraction {dynamic_fraction} not in [0, 1]")
    if not 0.0 <= triggered_fraction <= 1.0:
        raise ModelError(f"triggered_fraction {triggered_fraction} not in [0, 1]")
    ranked = rank_by_fussell_vesely(cutsets)
    n_dynamic = int(len(ranked) * dynamic_fraction)
    if dynamic_fraction > 0.0 and n_dynamic == 0 and ranked:
        n_dynamic = 1
    chosen = ranked[:n_dynamic]
    dynamic_events = tuple(name for name, _ in chosen)

    # Group the chosen events by (rounded) importance, preserving order.
    groups: list[list[str]] = []
    last_key: float | None = None
    for name, fv in chosen:
        key = _round_significant(fv, importance_digits)
        if last_key is None or key != last_key:
            groups.append([])
            last_key = key
        groups[-1].append(name)

    target_triggered = int(n_dynamic * triggered_fraction)
    chains: list[tuple[str, ...]] = []
    triggered = 0
    for group in groups:
        if triggered >= target_triggered:
            break
        if len(group) < 2:
            continue
        # Cut the group if it would overshoot the trigger budget.
        room = target_triggered - triggered
        chain = tuple(group[: room + 1])
        if len(chain) < 2:
            continue
        chains.append(chain)
        triggered += len(chain) - 1
    return DynamizationPlan(dynamic_events, tuple(chains))


def dynamize(
    tree: FaultTree,
    plan: DynamizationPlan,
    horizon: float,
    phases: int = 1,
    repair_rate: float = 0.05,
    passive_factor: float = 0.01,
    name: str | None = None,
) -> SdFaultTree:
    """Apply a :class:`DynamizationPlan` to a static fault tree.

    Every planned event's static probability ``p`` is converted to a
    failure rate ``λ = -ln(1-p)/horizon`` so the Erlang-1 worst case
    over ``horizon`` reproduces ``p`` exactly (higher phase counts keep
    the mean time to failure).  Chain heads stay untriggered; each chain
    successor is triggered by a pass-through OR gate over its
    predecessor (the paper's "dynamic basic event directly triggers
    another one" pattern).
    """
    dynamic_set = set(plan.dynamic_events)
    for event_name in dynamic_set:
        if event_name not in tree.events:
            raise ModelError(f"plan names unknown event {event_name!r}")
    triggered: dict[str, str] = {}  # event -> predecessor event
    for chain in plan.chains:
        for predecessor, successor in zip(chain, chain[1:]):
            triggered[successor] = predecessor

    b = SdFaultTreeBuilder(name or f"{tree.name}#dynamized")
    for event_name, event in tree.events.items():
        if event_name not in dynamic_set:
            b.static_event(event_name, event.probability, event.description)
            continue
        rate = _rate_for_probability(event.probability, horizon)
        if event_name in triggered:
            chain = triggered_erlang(phases, rate, repair_rate, passive_factor)
        else:
            chain = erlang_failure(phases, rate, repair_rate)
        b.dynamic_event(event_name, chain, event.description)

    for gate in tree.gates.values():
        b.gate(gate.name, gate.gate_type, gate.children, gate.k, gate.description)

    # Pass-through trigger-source gates (one per chain predecessor).
    for successor, predecessor in sorted(triggered.items()):
        source = f"{predecessor}{TRIGGER_SOURCE_SUFFIX}"
        if not b.has_node(source):
            b.gate(
                source,
                GateType.OR,
                (predecessor,),
                description=f"trigger source over {predecessor}",
            )
        b.trigger(source, successor)

    return b.build(tree.top)


def _rate_for_probability(probability: float, horizon: float) -> float:
    """The rate whose first passage over ``horizon`` equals ``probability``."""
    if not 0.0 < probability < 1.0:
        raise ModelError(
            f"cannot derive a failure rate from probability {probability}"
        )
    if horizon <= 0.0:
        raise ModelError(f"horizon must be positive, got {horizon}")
    return -math.log(1.0 - probability) / horizon


def _round_significant(value: float, digits: int) -> float:
    if value <= 0.0:
        return 0.0
    magnitude = math.floor(math.log10(value))
    factor = 10.0 ** (digits - 1 - magnitude)
    return round(value * factor) / factor
