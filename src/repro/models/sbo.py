"""Station-blackout (SBO) study: sequence-dependent behaviour end to end.

A compact second case study (the BWR model of §VI-A is the first) built
around the accident the post-Fukushima discussion in the paper's
introduction alludes to — loss of offsite power with battery depletion:

* **offsite power** fails at time zero (the initiating event *is* the
  loss) and is recovered with a repair rate — a dynamic event whose
  chain starts in its failed state, something no static model can
  express;
* two **emergency diesel generators** back the grid: static
  fail-to-start plus dynamic, repairable fail-to-run;
* a **station blackout** (offsite and both EDGs down simultaneously)
  *triggers battery depletion*: the DC batteries only drain while the
  blackout lasts, modelled by a triggered Erlang chain with no passive
  progression and no repair (recharging is not depletion-reversal
  within the mission) — the textbook sequence-dependent failure;
* the **turbine-driven pump** keeps the core covered during a blackout
  while DC holds: core damage is a blackout together with battery
  depletion or a TDP failure.

All triggering gates have static branching, so the study quantifies in
the cheapest class; with ~7 basic events the exact product chain is
feasible too, which the tests exploit for a full three-way validation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.sdft import SdFaultTree, SdFaultTreeBuilder
from repro.ctmc.builders import repairable, triggered_erlang
from repro.ctmc.chain import Ctmc
from repro.errors import ModelError

__all__ = ["SboConfig", "build_sbo", "offsite_recovery_chain"]


@dataclass(frozen=True)
class SboConfig:
    """Parameters of the station-blackout study.

    ``grid_recovery_rate`` is the offsite-power restoration rate (the
    industry's LOOP non-recovery curves put the mean around 2–8 h);
    ``battery_hours`` is the mean depletion time under blackout load,
    shaped by ``battery_phases`` Erlang stages (more phases = closer to
    a deterministic coping time).
    """

    grid_recovery_rate: float = 0.25  # mean 4 h to restore offsite power
    edg_fail_to_start: float = 5e-3
    edg_fail_to_run_rate: float = 2e-3
    edg_repair_rate: float = 0.1
    battery_hours: float = 8.0
    battery_phases: int = 4
    tdp_fail_to_start: float = 2e-2
    tdp_fail_to_run_rate: float = 5e-3

    def __post_init__(self) -> None:
        if self.battery_hours <= 0.0:
            raise ModelError(f"battery_hours must be positive, got {self.battery_hours}")
        if self.battery_phases < 1:
            raise ModelError(
                f"battery_phases must be at least 1, got {self.battery_phases}"
            )


def offsite_recovery_chain(recovery_rate: float) -> Ctmc:
    """Offsite power after a LOOP: failed at time zero, repaired at a rate.

    A two-state chain whose *initial* state is the failed one — the
    initiating event has already happened.  Subsequent grid losses
    within the mission are neglected (second-order for 24–96 h windows).
    """
    return Ctmc(
        states=[("on", 0), ("on", 1)],
        initial={("on", 1): 1.0},
        rates={(("on", 1), ("on", 0)): recovery_rate},
        failed=[("on", 1)],
    )


def build_sbo(config: SboConfig | None = None) -> SdFaultTree:
    """Build the station-blackout SD fault tree."""
    cfg = config or SboConfig()
    b = SdFaultTreeBuilder("station-blackout")

    b.dynamic_event(
        "OFFSITE",
        offsite_recovery_chain(cfg.grid_recovery_rate),
        "offsite power lost (recovering)",
    )
    for unit in ("A", "B"):
        b.static_event(
            f"EDG-{unit}-FTS", cfg.edg_fail_to_start, f"diesel {unit} fails to start"
        )
        b.dynamic_event(
            f"EDG-{unit}-FTR",
            repairable(cfg.edg_fail_to_run_rate, cfg.edg_repair_rate),
            f"diesel {unit} fails to run",
        )
        b.or_(f"EDG-{unit}", f"EDG-{unit}-FTS", f"EDG-{unit}-FTR")

    b.and_("SBO", "OFFSITE", "EDG-A", "EDG-B", description="station blackout")

    # Battery depletion: progresses only while triggered by the blackout
    # (passive factor 0: no drain when AC is available) and cannot be
    # "repaired" back to charged within the mission.
    depletion_rate = 1.0 / cfg.battery_hours
    b.dynamic_event(
        "DC-DEPLETED",
        triggered_erlang(
            cfg.battery_phases, depletion_rate, repair_rate=0.0, passive_factor=0.0
        ),
        "station batteries depleted",
    )
    b.trigger("SBO", "DC-DEPLETED")

    b.static_event(
        "TDP-FTS", cfg.tdp_fail_to_start, "turbine-driven pump fails to start"
    )
    b.dynamic_event(
        "TDP-FTR",
        repairable(cfg.tdp_fail_to_run_rate, 0.05),
        "turbine-driven pump fails to run",
    )
    b.or_("TDP", "TDP-FTS", "TDP-FTR")

    b.or_("COPING-LOST", "DC-DEPLETED", "TDP")
    b.and_("CORE-DAMAGE", "SBO", "COPING-LOST")
    return b.build("CORE-DAMAGE")
