"""Fictive boiling-water-reactor safety study (paper, Section VI-A).

The paper's small-size experiment uses "an example safety study of a
fictive boiling water reactor" with five cooling-related systems:

* **ECC** — Emergency Core Cooling,
* **EFW** — Emergency Feed Water,
* **RHR** — Residual Heat Removal,
* **CCW** — Component Cooling Water (support of ECC and EFW),
* **SWS** — Service Water System (support of CCW),

each with two redundant pump trains, plus a **FEED&BLEED** operator
recovery demanded when both RHR trains fail.  The original model is
proprietary to the example study; this module rebuilds it from the
paper's own description: pump failures split into a static
fail-to-start and a (dynamizable) fail-in-operation, per-train suction
and power components, per-system pump CCF, an event tree of the general
transient defining core damage, and the six trigger stages the paper
adds one by one (FEED&BLEED, RHR, EFW, ECC, SWS, CCW).

The returned model is an :class:`~repro.core.sdft.SdFaultTree`; with
``dynamic=False`` every event is static (the "no timing" baseline).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.sdft import SdFaultTree, SdFaultTreeBuilder
from repro.ctmc.builders import erlang_failure, triggered_erlang
from repro.errors import ModelError
from repro.eventtree.tree import EventTreeBuilder, compile_damage_state

__all__ = ["BwrConfig", "TRIGGER_STAGES", "build_bwr"]

#: The order in which the paper's table adds triggers, one per row.
TRIGGER_STAGES = ("FEEDBLEED", "RHR", "EFW", "ECC", "SWS", "CCW")

#: Frontline and support systems with their fail-in-operation rates (1/h).
_SYSTEMS = (
    ("ECC", 1.0e-3),
    ("EFW", 1.2e-3),
    ("RHR", 0.9e-3),
    ("CCW", 0.8e-3),
    ("SWS", 0.8e-3),
)

_TRAINS = ("A", "B")


@dataclass(frozen=True)
class BwrConfig:
    """Parameters of the BWR study.

    ``triggers`` lists enabled trigger stages (any subset of
    :data:`TRIGGER_STAGES`); ``repair_rate`` of ``None`` removes repair
    transitions entirely; ``dynamic=False`` produces the all-static
    baseline model regardless of the other dynamic knobs.
    """

    dynamic: bool = True
    phases: int = 1
    repair_rate: float | None = 0.05
    triggers: tuple[str, ...] = ()
    include_ccf: bool = True
    passive_factor: float = 0.01

    def __post_init__(self) -> None:
        unknown = set(self.triggers) - set(TRIGGER_STAGES)
        if unknown:
            raise ModelError(f"unknown trigger stages: {sorted(unknown)}")


def build_bwr(config: BwrConfig | None = None) -> SdFaultTree:
    """Build the fictive BWR model under ``config``."""
    cfg = config or BwrConfig()
    b = SdFaultTreeBuilder("bwr-transient")

    # ------------------------------------------------------------------
    # Basic events and per-system structure
    # ------------------------------------------------------------------
    for system, rate in _SYSTEMS:
        # CCW and SWS are support systems: only ever referenced per
        # train by the systems they support, so a system-level gate
        # would be unreachable dead weight.
        _build_system(
            b, cfg, system, rate, system_gate=system not in ("CCW", "SWS")
        )
    _build_feed_and_bleed(b, cfg)

    # Water sources shared by the injection systems.
    b.static_event("CST-EMPTY", 3e-6, "condensate storage tank unavailable")
    b.static_event("SP-PLUGGED", 3e-6, "suppression pool suction plugged")
    b.or_("ECC-FAILS", "ECC", "SP-PLUGGED")
    b.or_("EFW-FAILS", "EFW", "CST-EMPTY")

    # ------------------------------------------------------------------
    # Event tree of the general transient (delete-term compilation)
    # ------------------------------------------------------------------
    b.static_event("IE-TRANSIENT", 1e-2, "general transient initiating event")
    event_tree = (
        EventTreeBuilder("TRANSIENT", "IE-TRANSIENT", 1.0)
        .functional_event("EFW", "EFW-FAILS", "emergency feed water")
        .functional_event("ECC", "ECC-FAILS", "emergency core cooling")
        .functional_event("RHR", "RHR", "residual heat removal")
        .functional_event("FB", "FB-FAILS", "feed & bleed recovery")
        .sequence("S-INJECTION", "CD", EFW=True, ECC=True)
        .sequence("S-HEAT-REMOVAL", "CD", EFW=False, RHR=True, FB=True)
        .sequence("S-LATE", "CD", EFW=True, ECC=False, RHR=True, FB=True)
        .sequence("S-OK", "OK", EFW=False, RHR=False)
        .build()
    )
    damage_gate = compile_damage_state(event_tree, "CD", b)
    b.and_("CORE-DAMAGE", "IE-TRANSIENT", damage_gate)

    # ------------------------------------------------------------------
    # Triggers (the six stages of the paper's table)
    # ------------------------------------------------------------------
    if cfg.dynamic:
        stages = set(cfg.triggers)
        if "FEEDBLEED" in stages:
            b.trigger("RHR", "FB-PUMP-FTR")
        for system in ("RHR", "EFW", "ECC", "SWS", "CCW"):
            if system in stages:
                b.trigger(f"{system}-TRAIN-A", f"{system}-B-PUMP-FTR")

    return b.build("CORE-DAMAGE")


def _build_system(
    b: SdFaultTreeBuilder,
    cfg: BwrConfig,
    system: str,
    rate: float,
    system_gate: bool = True,
) -> None:
    """One two-train system with suction, power and pump failures.

    With ``system_gate=False`` (support systems) no system-level gate
    is built and the pump-CCF event becomes a child of every train gate
    instead, so it stays effective for the per-train consumers.
    """
    ccf: str | None = None
    if cfg.include_ccf:
        ccf = f"{system}-PUMPS-CCF"
        b.static_event(ccf, 1e-4, f"common cause failure of {system} pumps")
    for train in _TRAINS:
        prefix = f"{system}-{train}"
        b.static_event(f"{prefix}-PUMP-FTS", 3e-3, f"{prefix} pump fails to start")
        _declare_operation_failure(b, cfg, system, train, rate)
        b.static_event(f"{prefix}-MOV-FTO", 1e-3, f"{prefix} discharge valve fails")
        b.static_event(f"{prefix}-CV-STUCK", 3e-4, f"{prefix} check valve stuck")
        b.static_event(f"{prefix}-BREAKER", 5e-4, f"{prefix} breaker fails to close")
        b.static_event(f"{prefix}-DC-BUS", 2e-4, f"{prefix} DC bus unavailable")
        b.or_(f"{prefix}-PUMP", f"{prefix}-PUMP-FTS", f"{prefix}-PUMP-FTR")
        b.or_(f"{prefix}-SUCTION", f"{prefix}-MOV-FTO", f"{prefix}-CV-STUCK")
        b.or_(f"{prefix}-POWER", f"{prefix}-BREAKER", f"{prefix}-DC-BUS")

        children = [f"{prefix}-PUMP", f"{prefix}-SUCTION", f"{prefix}-POWER"]
        if system in ("ECC", "EFW", "RHR"):
            b.static_event(
                f"{prefix}-ROOM-HVAC", 4e-4, f"{prefix} pump-room cooling fails"
            )
            children.append(f"{prefix}-ROOM-HVAC")
        # Support-system chaining: ECC/EFW trains need the same-lettered
        # CCW train; CCW trains need the same-lettered SWS train.
        if system in ("ECC", "EFW"):
            children.append(f"CCW-TRAIN-{train}")
        elif system == "CCW":
            children.append(f"SWS-TRAIN-{train}")
        if not system_gate and ccf is not None:
            children.append(ccf)
        b.or_(f"{system}-TRAIN-{train}", *children)

    if not system_gate:
        return
    redundancy = f"{system}-BOTH-TRAINS"
    b.and_(redundancy, f"{system}-TRAIN-A", f"{system}-TRAIN-B")
    if ccf is not None:
        b.or_(system, redundancy, ccf)
    else:
        b.or_(system, redundancy)


def _build_feed_and_bleed(b: SdFaultTreeBuilder, cfg: BwrConfig) -> None:
    """The FEED&BLEED recovery: operator action, relief valve, pump."""
    b.static_event("FB-OPERATOR", 1e-2, "operator fails to initiate feed & bleed")
    b.static_event("FB-SRV-FTO", 1e-3, "safety relief valve fails to open")
    b.static_event("FB-PUMP-FTS", 3e-3, "feed & bleed pump fails to start")
    _declare_operation_failure(b, cfg, "FB", None, 1.5e-3)
    b.or_("FB-PUMP", "FB-PUMP-FTS", "FB-PUMP-FTR")
    b.or_("FB-FAILS", "FB-OPERATOR", "FB-SRV-FTO", "FB-PUMP")


def _declare_operation_failure(
    b: SdFaultTreeBuilder,
    cfg: BwrConfig,
    system: str,
    train: str | None,
    rate: float,
) -> None:
    """Declare one fail-in-operation event, static or dynamic.

    Train-A pumps (and untriggered train-B pumps) run from the start and
    use the plain Erlang chain; a train-B (or FEED&BLEED) pump whose
    trigger stage is enabled uses the triggered chain of Section VI-A.
    """
    name = f"{system}-{train}-PUMP-FTR" if train else f"{system}-PUMP-FTR"
    description = f"{system} pump {train or ''} fails in operation".strip()
    if not cfg.dynamic:
        # The static stand-in: probability of failing within 24 h.
        probability = 1.0 - _exp_survival(rate, 24.0)
        b.static_event(name, probability, description)
        return
    repair = cfg.repair_rate or 0.0
    triggered = _is_triggered(cfg, system, train)
    if triggered:
        chain = triggered_erlang(cfg.phases, rate, repair, cfg.passive_factor)
    else:
        chain = erlang_failure(cfg.phases, rate, repair if repair > 0.0 else None)
    b.dynamic_event(name, chain, description)


def _is_triggered(cfg: BwrConfig, system: str, train: str | None) -> bool:
    if train is None:  # FEED&BLEED pump
        return "FEEDBLEED" in cfg.triggers
    return train == "B" and system in cfg.triggers


def _exp_survival(rate: float, horizon: float) -> float:
    import math

    return math.exp(-rate * horizon)
