"""JSON serialisation of fault trees and SD fault trees.

A small, explicit interchange format so models survive between runs and
the command-line interface can operate on files:

* a static tree is ``{"kind": "fault-tree", "top": ..., "events": [...],
  "gates": [...]}``;
* an SD tree adds ``"dynamic_events"`` (each with an inlined CTMC) and
  ``"triggers"``.

CTMC states are arbitrary hashables in memory; on disk they are encoded
as JSON values with tuples converted to lists and restored as tuples on
load (the convention all builders in :mod:`repro.ctmc.builders` follow).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.core.sdft import DynamicBasicEvent, SdFaultTree
from repro.ctmc.chain import Ctmc
from repro.ctmc.triggered import TriggeredCtmc
from repro.errors import ModelError
from repro.ft.tree import BasicEvent, FaultTree, Gate, GateType

__all__ = [
    "tree_to_dict",
    "tree_from_dict",
    "sdft_to_dict",
    "sdft_from_dict",
    "save_model",
    "load_model",
]


# ----------------------------------------------------------------------
# State encoding
# ----------------------------------------------------------------------


def _encode_state(state: Any) -> Any:
    if isinstance(state, tuple):
        return [_encode_state(part) for part in state]
    if isinstance(state, (str, int, float, bool)) or state is None:
        return state
    raise ModelError(f"cannot serialise CTMC state {state!r}")


def _decode_state(raw: Any) -> Any:
    if isinstance(raw, list):
        return tuple(_decode_state(part) for part in raw)
    return raw


# ----------------------------------------------------------------------
# Static trees
# ----------------------------------------------------------------------


def tree_to_dict(tree: FaultTree) -> dict:
    """Serialise a static fault tree to plain JSON-compatible data."""
    return {
        "kind": "fault-tree",
        "name": tree.name,
        "top": tree.top,
        "events": [
            {"name": e.name, "probability": e.probability, "description": e.description}
            for e in tree.events.values()
        ],
        "gates": [_gate_to_dict(g) for g in tree.gates.values()],
    }


def tree_from_dict(data: dict) -> FaultTree:
    """Rebuild a static fault tree from :func:`tree_to_dict` output."""
    if data.get("kind") != "fault-tree":
        raise ModelError(f"not a fault-tree document: kind={data.get('kind')!r}")
    events = [
        BasicEvent(e["name"], e["probability"], e.get("description", ""))
        for e in data["events"]
    ]
    gates = [_gate_from_dict(g) for g in data["gates"]]
    return FaultTree(data["top"], events, gates, name=data.get("name", "fault-tree"))


def _gate_to_dict(gate: Gate) -> dict:
    entry = {
        "name": gate.name,
        "type": gate.gate_type.value,
        "children": list(gate.children),
    }
    if gate.k is not None:
        entry["k"] = gate.k
    if gate.description:
        entry["description"] = gate.description
    return entry


def _gate_from_dict(data: dict) -> Gate:
    return Gate(
        data["name"],
        GateType(data["type"]),
        tuple(data["children"]),
        data.get("k"),
        data.get("description", ""),
    )


# ----------------------------------------------------------------------
# CTMCs
# ----------------------------------------------------------------------


def _chain_to_dict(chain: Ctmc) -> dict:
    entry: dict[str, Any] = {
        "states": [_encode_state(s) for s in chain.states],
        "initial": [
            [_encode_state(s), p] for s, p in sorted(chain.initial.items(), key=str)
        ],
        "rates": [
            [_encode_state(s), _encode_state(d), r]
            for (s, d), r in sorted(chain.rates.items(), key=str)
        ],
        "failed": sorted((_encode_state(s) for s in chain.failed), key=str),
    }
    if isinstance(chain, TriggeredCtmc):
        entry["on_states"] = sorted(
            (_encode_state(s) for s in chain.on_states), key=str
        )
        entry["switch_on"] = [
            [_encode_state(s), _encode_state(d)]
            for s, d in sorted(chain.switch_on.items(), key=str)
        ]
        entry["switch_off"] = [
            [_encode_state(s), _encode_state(d)]
            for s, d in sorted(chain.switch_off.items(), key=str)
        ]
    return entry


def _chain_from_dict(data: dict) -> Ctmc:
    states = [_decode_state(s) for s in data["states"]]
    initial = {_decode_state(s): p for s, p in data["initial"]}
    rates = {
        (_decode_state(s), _decode_state(d)): r for s, d, r in data["rates"]
    }
    failed = [_decode_state(s) for s in data["failed"]]
    if "on_states" in data:
        return TriggeredCtmc(
            states,
            initial,
            rates,
            failed,
            [_decode_state(s) for s in data["on_states"]],
            {_decode_state(s): _decode_state(d) for s, d in data["switch_on"]},
            {_decode_state(s): _decode_state(d) for s, d in data["switch_off"]},
        )
    return Ctmc(states, initial, rates, failed)


# ----------------------------------------------------------------------
# SD trees
# ----------------------------------------------------------------------


def sdft_to_dict(sdft: SdFaultTree) -> dict:
    """Serialise an SD fault tree (chains inlined)."""
    return {
        "kind": "sd-fault-tree",
        "name": sdft.name,
        "top": sdft.top,
        "static_events": [
            {"name": e.name, "probability": e.probability, "description": e.description}
            for e in sdft.static_events.values()
        ],
        "dynamic_events": [
            {
                "name": e.name,
                "description": e.description,
                "chain": _chain_to_dict(e.chain),
            }
            for e in sdft.dynamic_events.values()
        ],
        "gates": [_gate_to_dict(g) for g in sdft.gates.values()],
        "triggers": {g: list(events) for g, events in sdft.triggers.items()},
    }


def sdft_from_dict(data: dict) -> SdFaultTree:
    """Rebuild an SD fault tree from :func:`sdft_to_dict` output."""
    if data.get("kind") != "sd-fault-tree":
        raise ModelError(f"not an sd-fault-tree document: kind={data.get('kind')!r}")
    static_events = [
        BasicEvent(e["name"], e["probability"], e.get("description", ""))
        for e in data["static_events"]
    ]
    dynamic_events = [
        DynamicBasicEvent(
            e["name"], _chain_from_dict(e["chain"]), e.get("description", "")
        )
        for e in data["dynamic_events"]
    ]
    gates = [_gate_from_dict(g) for g in data["gates"]]
    return SdFaultTree(
        data["top"],
        static_events,
        dynamic_events,
        gates,
        data.get("triggers", {}),
        name=data.get("name", "sd-fault-tree"),
    )


# ----------------------------------------------------------------------
# Files
# ----------------------------------------------------------------------


def save_model(model: FaultTree | SdFaultTree, path: str | Path) -> None:
    """Write a model to a JSON file (kind is chosen by the model type)."""
    if isinstance(model, SdFaultTree):
        data = sdft_to_dict(model)
    elif isinstance(model, FaultTree):
        data = tree_to_dict(model)
    else:
        raise ModelError(f"cannot serialise object of type {type(model).__name__}")
    Path(path).write_text(json.dumps(data, indent=2, sort_keys=True))


def load_model(path: str | Path) -> FaultTree | SdFaultTree:
    """Load a model file written by :func:`save_model`."""
    data = json.loads(Path(path).read_text())
    kind = data.get("kind")
    if kind == "fault-tree":
        return tree_from_dict(data)
    if kind == "sd-fault-tree":
        return sdft_from_dict(data)
    raise ModelError(f"unknown model kind {kind!r} in {path}")
