"""Experiment models: the BWR study, synthetic PSA trees, dynamization.

* :mod:`repro.models.bwr` — the fictive boiling-water-reactor study of
  Section VI-A, with its six incremental trigger stages.
* :mod:`repro.models.synthetic` — seeded generators of industrial-size
  PSA fault trees standing in for the two proprietary studies of
  Section VI-B.
* :mod:`repro.models.enrich` — Fussell–Vesely-driven dynamization and
  trigger chaining (the Section VI-B methodology).
* :mod:`repro.models.sbo` — a station-blackout study with battery
  depletion triggered by the blackout (sequence-dependent behaviour).
* :mod:`repro.models.formats` — JSON serialisation of all model types.
* :mod:`repro.models.openpsa` — Open-PSA MEF XML import/export.
"""

from repro.models.bwr import TRIGGER_STAGES, BwrConfig, build_bwr
from repro.models.enrich import DynamizationPlan, dynamize, plan_dynamization
from repro.models.formats import load_model, save_model
from repro.models.openpsa import load_openpsa, save_openpsa
from repro.models.sbo import SboConfig, build_sbo
from repro.models.synthetic import SyntheticConfig, build_synthetic, model_1, model_2

__all__ = [
    "BwrConfig",
    "DynamizationPlan",
    "SboConfig",
    "SyntheticConfig",
    "TRIGGER_STAGES",
    "build_bwr",
    "build_synthetic",
    "build_sbo",
    "dynamize",
    "load_model",
    "load_openpsa",
    "model_1",
    "model_2",
    "plan_dynamization",
    "save_model",
    "save_openpsa",
]
