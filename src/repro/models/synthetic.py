"""Synthetic industrial-size PSA fault trees (paper, Section VI-B).

The paper's large-scale experiments run on two real nuclear safety
studies (2,995 basic events / 52,213 gates and 2,040 / 56,863).  Those
models are proprietary, so this generator builds fault trees with the
*structural statistics the algorithm is sensitive to*:

* a frontline/support topology — redundant-train frontline systems
  whose trains depend on shared support-system trains, support systems
  chaining onto deeper support (the source of long trigger chains);
* accident sequences — AND combinations of frontline-system failures
  under per-initiator OR groups (the event-tree residue present in any
  flattened PSA model);
* per-system pump CCF events, log-uniform component probabilities, and
  binary gate layering inside trains (real PSA models are deep: tens of
  thousands of small gates, not wide flat ones).

Everything is driven by a seeded :class:`numpy.random.Generator`, so a
configuration is a reproducible model identity.  Two presets mirror the
paper's two studies at a laptop-friendly scale (``model_1``/``model_2``)
and accept a ``scale`` factor to grow toward the original sizes.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.ft.builder import FaultTreeBuilder
from repro.ft.tree import FaultTree

__all__ = ["SyntheticConfig", "build_synthetic", "model_1", "model_2"]


@dataclass(frozen=True)
class SyntheticConfig:
    """Shape parameters of a synthetic PSA model.

    ``support_fanout`` controls how many support-train gates a frontline
    train references; ``group_size`` is the arity of the OR layering
    inside trains (2 gives the deep binary structure of real models).
    """

    seed: int = 1
    n_initiators: int = 3
    n_frontline: int = 8
    n_support: int = 4
    trains_per_system: int = 2
    components_per_train: int = 6
    sequences_per_initiator: int = 3
    systems_per_sequence: int = 2
    support_fanout: int = 1
    support_chain_depth: int = 2
    group_size: int = 2
    include_ccf: bool = True
    probability_range: tuple[float, float] = (3e-5, 2e-3)

    def scaled(self, scale: float) -> "SyntheticConfig":
        """A proportionally larger (or smaller) configuration.

        Scales the system counts and components per train; train
        redundancy and sequence shape stay fixed (they are structural
        constants of PSA models, not size knobs).
        """
        return replace(
            self,
            n_frontline=max(2, round(self.n_frontline * scale)),
            n_support=max(1, round(self.n_support * scale)),
            components_per_train=max(2, round(self.components_per_train * scale)),
            n_initiators=max(1, round(self.n_initiators * scale)),
        )


def model_1(scale: float = 1.0) -> FaultTree:
    """The stand-in for the paper's study "model 1".

    Broad and comparatively shallow: more frontline systems, shorter
    support chains — the study whose cutsets quantify faster.
    """
    config = SyntheticConfig(
        seed=101,
        n_initiators=4,
        n_frontline=9,
        n_support=4,
        components_per_train=6,
        sequences_per_initiator=3,
        systems_per_sequence=2,
        support_chain_depth=2,
    )
    return build_synthetic(config.scaled(scale), name="synthetic-model-1")


def model_2(scale: float = 1.0) -> FaultTree:
    """The stand-in for the paper's study "model 2".

    Deeper support chaining and wider sequences: fewer but harder
    cutsets, mirroring the study with the much longer generation time.
    """
    config = SyntheticConfig(
        seed=202,
        n_initiators=3,
        n_frontline=7,
        n_support=5,
        components_per_train=7,
        sequences_per_initiator=4,
        systems_per_sequence=2,
        support_fanout=2,
        support_chain_depth=3,
    )
    return build_synthetic(config.scaled(scale), name="synthetic-model-2")


def build_synthetic(
    config: SyntheticConfig, name: str = "synthetic-psa"
) -> FaultTree:
    """Generate a fault tree from ``config`` (deterministic in the seed)."""
    rng = np.random.default_rng(config.seed)
    b = FaultTreeBuilder(name)

    # Support systems first: SUP-i trains may depend on SUP-j (j > i)
    # trains up to the configured chain depth.  Support systems are only
    # ever referenced per train, so no system-level gate is built for
    # them (it would be unreachable dead weight).
    for i in range(config.n_support):
        depth_left = config.support_chain_depth
        deeper = [
            j
            for j in range(i + 1, min(i + 1 + depth_left, config.n_support))
        ]
        _build_system(
            b,
            rng,
            config,
            f"SUP-{i}",
            [f"SUP-{j}" for j in deeper],
            system_gate=False,
        )

    # Frontline systems draw support dependencies pseudo-randomly.
    for i in range(config.n_frontline):
        if config.n_support:
            n_deps = min(config.support_fanout, config.n_support)
            chosen = rng.choice(config.n_support, size=n_deps, replace=False)
            depends = [f"SUP-{j}" for j in sorted(int(j) for j in chosen)]
        else:
            depends = []
        _build_system(b, rng, config, f"FL-{i}", depends)

    # Accident sequences: per initiator, AND combinations of frontline
    # system failures gated by the initiating event.  A shuffled deck of
    # frontline indices is dealt out first, so — whenever the sequence
    # slots suffice — every frontline system lands in at least one
    # sequence (an undrawn system would be unreachable dead weight).
    deck = [int(j) for j in rng.permutation(config.n_frontline)]
    sequence_gates: list[str] = []
    for i in range(config.n_initiators):
        ie_name = f"IE-{i}"
        b.event(ie_name, _draw_probability(rng, (1e-3, 5e-2)), f"initiating event {i}")
        for s in range(config.sequences_per_initiator):
            k = min(config.systems_per_sequence, config.n_frontline)
            chosen: list[int] = []
            while deck and len(chosen) < k:
                chosen.append(deck.pop())
            if len(chosen) < k:
                rest = [j for j in range(config.n_frontline) if j not in chosen]
                extra = rng.choice(len(rest), size=k - len(chosen), replace=False)
                chosen.extend(rest[int(e)] for e in extra)
            systems = [f"FL-{j}" for j in sorted(chosen)]
            gate = f"SEQ-{i}-{s}"
            b.and_(gate, ie_name, *systems, description=f"sequence {s} of IE {i}")
            sequence_gates.append(gate)
    b.or_("TOP", *sequence_gates, description="core damage")
    return b.build("TOP")


def _build_system(
    b: FaultTreeBuilder,
    rng: np.random.Generator,
    config: SyntheticConfig,
    system: str,
    support: list[str],
    system_gate: bool = True,
) -> None:
    """One redundant-train system, optionally hanging onto support trains.

    Component probabilities are drawn once per component *slot* and
    shared across the system's trains: redundant trains are identical
    hardware.  This symmetry is what gives same-slot events identical
    Fussell–Vesely importance, which the dynamization methodology of
    Section VI-B relies on to form trigger chains.

    The system's pump CCF event is a child of every train gate — a
    common-cause failure takes out all redundant trains at once — so it
    stays effective both through the system-level AND gate and for
    consumers that reference individual trains (support systems, which
    set ``system_gate=False`` and get no system-level gate at all).
    """
    slot_probabilities = [
        _draw_probability(rng, config.probability_range)
        for _ in range(config.components_per_train)
    ]
    ccf: str | None = None
    if config.include_ccf:
        ccf = f"{system}-CCF"
        b.event(ccf, _draw_probability(rng, (1e-5, 3e-4)), f"CCF of {system}")
    train_letters = [chr(ord("A") + t) for t in range(config.trains_per_system)]
    for letter in train_letters:
        prefix = f"{system}-{letter}"
        leaves: list[str] = []
        for c in range(config.components_per_train):
            event = f"{prefix}-C{c}"
            b.event(
                event,
                slot_probabilities[c],
                f"component {c} of train {prefix}",
            )
            leaves.append(event)
        # Layer the train's OR logic into small groups (deep structure).
        grouped = _layer_or(b, prefix, leaves, config.group_size)
        children = [grouped]
        if ccf is not None:
            children.append(ccf)
        for sup in support:
            children.append(f"{sup}-TRAIN-{letter}")
        b.or_(f"{system}-TRAIN-{letter}", *children)

    if system_gate:
        b.and_(system, *[f"{system}-TRAIN-{x}" for x in train_letters])


def _layer_or(
    b: FaultTreeBuilder, prefix: str, leaves: list[str], group_size: int
) -> str:
    """Fold a wide OR into a tree of ``group_size``-ary OR gates."""
    level = list(leaves)
    round_index = 0
    while len(level) > 1:
        next_level: list[str] = []
        for g in range(0, len(level), group_size):
            chunk = level[g : g + group_size]
            if len(chunk) == 1:
                next_level.append(chunk[0])
                continue
            gate = f"{prefix}-G{round_index}-{g // group_size}"
            b.or_(gate, *chunk)
            next_level.append(gate)
        level = next_level
        round_index += 1
    if b.has_node(level[0]) and level[0].startswith(prefix + "-G"):
        return level[0]
    # A single component: wrap so the caller always gets a gate name.
    gate = f"{prefix}-G-only"
    b.or_(gate, level[0])
    return gate


def _draw_probability(
    rng: np.random.Generator, bounds: tuple[float, float]
) -> float:
    """Log-uniform probability in ``bounds`` (the PSA-typical spread)."""
    low, high = np.log(bounds[0]), np.log(bounds[1])
    return float(np.exp(rng.uniform(low, high)))
