"""Event-tree model and compilation into fault-tree gates.

An :class:`EventTree` is an initiating event plus an ordered row of
:class:`FunctionalEvent` headers; a :class:`Sequence` assigns each
functional event a branch (``True`` = the safety function *fails*) and
ends in a consequence label.  Compilation follows standard PSA practice:

* a sequence's failure logic is the AND over the fault-tree top gates of
  its failed functional events;
* success branches are *dropped* (the "delete-term" approximation):
  coherent fault trees cannot express negation, and keeping only the
  failed branches is conservative;
* a damage state compiles to the OR over its sequences.

Compilation works against any builder exposing the gate-declaration
interface of :class:`repro.ft.builder.FaultTreeBuilder` /
:class:`repro.core.sdft.SdFaultTreeBuilder`, so event trees can sit on
static or SD fault trees alike.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ModelError

__all__ = [
    "FunctionalEvent",
    "Sequence",
    "EventTree",
    "EventTreeBuilder",
    "compile_sequence",
    "compile_damage_state",
]


@dataclass(frozen=True)
class FunctionalEvent:
    """A column header of the event tree: one safety function.

    ``top_gate`` names the fault-tree gate whose failure is the failure
    of this safety function.
    """

    name: str
    top_gate: str
    description: str = ""


@dataclass(frozen=True)
class Sequence:
    """One path through the event tree.

    ``branches`` maps functional-event names to ``True`` (failed) or
    ``False`` (succeeded); functional events missing from the map are
    "not asked" on this path (e.g. because an earlier failure made them
    irrelevant).  ``consequence`` is a free label such as ``"OK"`` or
    ``"CD"`` (core damage).
    """

    name: str
    branches: dict[str, bool]
    consequence: str

    @property
    def failed_events(self) -> tuple[str, ...]:
        """Functional events failed on this path, in declaration order."""
        return tuple(n for n, failed in self.branches.items() if failed)


@dataclass(frozen=True)
class EventTree:
    """An initiating event, its functional events, and all sequences."""

    name: str
    initiating_event: str
    initiating_frequency: float
    functional_events: tuple[FunctionalEvent, ...]
    sequences: tuple[Sequence, ...]

    def by_consequence(self, consequence: str) -> tuple[Sequence, ...]:
        """All sequences ending in the given consequence."""
        return tuple(s for s in self.sequences if s.consequence == consequence)

    def consequences(self) -> frozenset[str]:
        """All consequence labels that occur."""
        return frozenset(s.consequence for s in self.sequences)


class EventTreeBuilder:
    """Incremental construction of an :class:`EventTree`."""

    def __init__(
        self, name: str, initiating_event: str, initiating_frequency: float
    ) -> None:
        if initiating_frequency < 0.0:
            raise ModelError(
                f"initiating frequency must be non-negative, got "
                f"{initiating_frequency}"
            )
        self.name = name
        self.initiating_event = initiating_event
        self.initiating_frequency = initiating_frequency
        self._functional: dict[str, FunctionalEvent] = {}
        self._sequences: list[Sequence] = []

    def functional_event(
        self, name: str, top_gate: str, description: str = ""
    ) -> "EventTreeBuilder":
        """Declare a safety-function column (order of declaration matters)."""
        if name in self._functional:
            raise ModelError(f"functional event {name!r} declared twice")
        self._functional[name] = FunctionalEvent(name, top_gate, description)
        return self

    def sequence(
        self, name: str, consequence: str, **branches: bool
    ) -> "EventTreeBuilder":
        """Declare a sequence; keyword arguments set the branch per function."""
        for functional_name in branches:
            if functional_name not in self._functional:
                raise ModelError(
                    f"sequence {name!r} references unknown functional event "
                    f"{functional_name!r}"
                )
        self._sequences.append(Sequence(name, dict(branches), consequence))
        return self

    def build(self) -> EventTree:
        """Assemble the event tree."""
        if not self._sequences:
            raise ModelError(f"event tree {self.name!r} has no sequences")
        names = [s.name for s in self._sequences]
        if len(set(names)) != len(names):
            raise ModelError(f"event tree {self.name!r} has duplicate sequence names")
        return EventTree(
            self.name,
            self.initiating_event,
            self.initiating_frequency,
            tuple(self._functional.values()),
            tuple(self._sequences),
        )


def compile_sequence(event_tree: EventTree, sequence: Sequence, builder) -> str:
    """Add the failure logic of one sequence to a fault-tree builder.

    Returns the name of the created gate (``<tree>::<sequence>``): an
    AND over the top gates of the failed functional events.  Success
    branches are dropped (delete-term approximation).  A sequence with
    no failed functional event cannot be expressed coherently and is
    rejected.
    """
    headers = {f.name: f for f in event_tree.functional_events}
    failed_gates = [headers[n].top_gate for n in sequence.failed_events]
    if not failed_gates:
        raise ModelError(
            f"sequence {sequence.name!r} fails no safety function; it has "
            f"no coherent failure logic to compile"
        )
    gate_name = f"{event_tree.name}::{sequence.name}"
    builder.and_(
        gate_name,
        *failed_gates,
        description=f"sequence {sequence.name} of {event_tree.name}",
    )
    return gate_name


def compile_damage_state(
    event_tree: EventTree, consequence: str, builder
) -> str:
    """Add the failure logic of a whole damage state to a builder.

    Returns the name of the created OR gate over all sequences ending in
    ``consequence`` (``<tree>::<consequence>``).
    """
    sequences = event_tree.by_consequence(consequence)
    if not sequences:
        raise ModelError(
            f"event tree {event_tree.name!r} has no sequence with "
            f"consequence {consequence!r}"
        )
    gate_names = [compile_sequence(event_tree, s, builder) for s in sequences]
    top_name = f"{event_tree.name}::{consequence}"
    builder.or_(
        top_name,
        *gate_names,
        description=f"damage state {consequence} of {event_tree.name}",
    )
    return top_name
