"""Quantification of event trees on top of fault-tree analyses.

Closes the PSA loop: an event tree's sequences compile to fault-tree
gates (:mod:`repro.eventtree.tree`), and this module evaluates every
sequence and every consequence against a model — static trees via MOCUS
and the rare-event sum, SD trees via the full dynamic pipeline.

Sequence *frequencies* are the initiating-event frequency times the
conditional failure probability of the sequence logic; consequence
frequencies sum their sequences (delete-term-conservative, like the
compilation itself).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.analyzer import AnalysisOptions, analyze
from repro.core.sdft import SdFaultTree, SdFaultTreeBuilder
from repro.errors import ModelError
from repro.eventtree.tree import EventTree, compile_sequence
from repro.ft.mocus import MocusOptions, mocus
from repro.ft.tree import FaultTree

__all__ = ["SequenceResult", "EventTreeResult", "quantify_event_tree"]


@dataclass(frozen=True)
class SequenceResult:
    """One quantified sequence: probability and resulting frequency."""

    name: str
    consequence: str
    probability: float
    frequency: float
    n_cutsets: int


@dataclass(frozen=True)
class EventTreeResult:
    """All sequences of one event tree plus per-consequence totals."""

    tree_name: str
    initiating_frequency: float
    sequences: tuple[SequenceResult, ...]

    def consequence_frequency(self, consequence: str) -> float:
        """Total frequency of a consequence (sum over its sequences)."""
        return sum(
            s.frequency for s in self.sequences if s.consequence == consequence
        )

    def by_consequence(self) -> dict[str, float]:
        """Frequencies of all consequences, sorted by label."""
        labels = sorted({s.consequence for s in self.sequences})
        return {label: self.consequence_frequency(label) for label in labels}


def quantify_event_tree(
    event_tree: EventTree,
    model: FaultTree | SdFaultTree,
    options: AnalysisOptions | None = None,
) -> EventTreeResult:
    """Quantify every failure sequence of ``event_tree`` against ``model``.

    ``model`` must define every functional event's top gate.  Sequences
    that fail no safety function (pure success paths) carry no coherent
    failure logic and are skipped — their frequency is the complement
    the delete-term approximation gives away.
    """
    opts = options or AnalysisOptions()
    for functional in event_tree.functional_events:
        if functional.top_gate not in model.gates:
            raise ModelError(
                f"model has no gate {functional.top_gate!r} for functional "
                f"event {functional.name!r}"
            )
    results = []
    for sequence in event_tree.sequences:
        if not sequence.failed_events:
            continue
        probability, n_cutsets = _sequence_probability(
            event_tree, sequence, model, opts
        )
        results.append(
            SequenceResult(
                sequence.name,
                sequence.consequence,
                probability,
                probability * event_tree.initiating_frequency,
                n_cutsets,
            )
        )
    return EventTreeResult(
        event_tree.name, event_tree.initiating_frequency, tuple(results)
    )


def _sequence_probability(event_tree, sequence, model, opts):
    if isinstance(model, SdFaultTree):
        rebuilt = _with_sequence_top(event_tree, sequence, model)
        result = analyze(rebuilt, opts)
        return result.failure_probability, result.n_cutsets
    headers = {f.name: f for f in event_tree.functional_events}
    import repro.ft.builder as ft_builder

    b = ft_builder.FaultTreeBuilder(f"{model.name}+{sequence.name}")
    for event in model.events.values():
        b.event(event.name, event.probability, event.description)
    for gate in model.gates.values():
        b.gate(gate.name, gate.gate_type, gate.children, gate.k, gate.description)
    top = compile_sequence(event_tree, sequence, b)
    tree = b.build(top)
    result = mocus(tree, MocusOptions(cutoff=opts.cutoff))
    return result.cutsets.rare_event(), len(result.cutsets)


def _with_sequence_top(event_tree, sequence, sdft: SdFaultTree) -> SdFaultTree:
    """Rebuild the SD model with the sequence gate as the top."""
    b = SdFaultTreeBuilder(f"{sdft.name}+{sequence.name}")
    for event in sdft.static_events.values():
        b.static_event(event.name, event.probability, event.description)
    for event in sdft.dynamic_events.values():
        b.dynamic_event(event.name, event.chain, event.description)
    for gate in sdft.gates.values():
        b.gate(gate.name, gate.gate_type, gate.children, gate.k, gate.description)
    for gate_name, events in sdft.triggers.items():
        b.trigger(gate_name, *events)
    top = compile_sequence(event_tree, sequence, b)
    return b.build(top)
