"""A level-1 PSA study: many initiators, one plant model.

Real safety studies aggregate over many initiating events — each with
its own event tree — against one plant fault-tree model.  A
:class:`Study` bundles them and quantifies the total damage-state
frequencies plus the per-initiator breakdown the review meetings want.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.analyzer import AnalysisOptions
from repro.core.sdft import SdFaultTree
from repro.errors import ModelError
from repro.eventtree.quantify import EventTreeResult, quantify_event_tree
from repro.eventtree.tree import EventTree
from repro.ft.tree import FaultTree

__all__ = ["Study", "StudyResult"]


@dataclass(frozen=True)
class StudyResult:
    """Quantification of a whole study.

    ``by_initiator`` holds the individual event-tree results;
    ``totals`` maps every consequence label to its aggregated frequency
    across initiators.
    """

    by_initiator: dict[str, EventTreeResult]
    totals: dict[str, float]

    def dominant_initiator(self, consequence: str) -> str | None:
        """The initiating event contributing most to a consequence."""
        best_name = None
        best_value = 0.0
        for name, result in self.by_initiator.items():
            value = result.consequence_frequency(consequence)
            if value > best_value:
                best_value = value
                best_name = name
        return best_name

    def contribution(self, initiator: str, consequence: str) -> float:
        """Fraction of a consequence's total carried by one initiator."""
        total = self.totals.get(consequence, 0.0)
        if total <= 0.0:
            return 0.0
        return (
            self.by_initiator[initiator].consequence_frequency(consequence)
            / total
        )


class Study:
    """One plant model, many initiating-event trees."""

    def __init__(self, model: FaultTree | SdFaultTree, name: str = "study") -> None:
        self.name = name
        self.model = model
        self._event_trees: dict[str, EventTree] = {}

    def add_initiator(self, event_tree: EventTree) -> "Study":
        """Register one initiating event's tree (names must be unique)."""
        if event_tree.name in self._event_trees:
            raise ModelError(
                f"study already has an event tree named {event_tree.name!r}"
            )
        self._event_trees[event_tree.name] = event_tree
        return self

    @property
    def initiators(self) -> tuple[str, ...]:
        """Names of all registered event trees."""
        return tuple(self._event_trees)

    def quantify(self, options: AnalysisOptions | None = None) -> StudyResult:
        """Quantify every initiator's sequences and aggregate."""
        if not self._event_trees:
            raise ModelError(f"study {self.name!r} has no initiators")
        by_initiator: dict[str, EventTreeResult] = {}
        totals: dict[str, float] = {}
        for name, event_tree in self._event_trees.items():
            result = quantify_event_tree(event_tree, self.model, options)
            by_initiator[name] = result
            for consequence, frequency in result.by_consequence().items():
                totals[consequence] = totals.get(consequence, 0.0) + frequency
        return StudyResult(by_initiator, dict(sorted(totals.items())))
