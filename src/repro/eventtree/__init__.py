"""Event trees: accident-sequence modelling on top of fault trees.

Probabilistic safety assessments organise fault trees under event trees:
an *initiating event* (e.g. loss of offsite power) is followed by a row
of *functional events* (safety functions), and each path of
success/failure branches is a *sequence* ending in a consequence (OK or
a damage state).  The paper points to event trees as the natural source
of trigger chains: the sequence order says which safety function is
demanded after which (Section V-A).

This subpackage compiles sequences and damage states into fault-tree
top gates so the rest of the package can quantify them.
"""

from repro.eventtree.quantify import (
    EventTreeResult,
    SequenceResult,
    quantify_event_tree,
)
from repro.eventtree.study import Study, StudyResult
from repro.eventtree.tree import (
    EventTree,
    EventTreeBuilder,
    FunctionalEvent,
    Sequence,
    compile_damage_state,
    compile_sequence,
)

__all__ = [
    "EventTree",
    "EventTreeBuilder",
    "EventTreeResult",
    "FunctionalEvent",
    "Sequence",
    "SequenceResult",
    "Study",
    "StudyResult",
    "compile_damage_state",
    "compile_sequence",
    "quantify_event_tree",
]
