"""Construction of the small SD fault tree ``FT_C`` for one minimal cutset.

This implements Section V-C of the paper — the step that makes the whole
method scale.  For a minimal cutset ``C`` the dynamic quantification

``p̃(C) = Pr_{FT_C}[Reach^{<=t}(F)] * prod_{static a in C} p(a)``

needs a model ``FT_C`` containing only:

1. a top AND gate over the *dynamic* events of ``C`` (they must all be
   failed simultaneously at some point before the horizon);
2. for each triggered event ``a`` among them, a reconstruction of its
   triggering gate's timing over a *relevant set* ``Rel_a`` of events,
   whose size depends on the gate's class (Section V-A):

   * static branching:  ``Rel_a = Dyn_a ∩ C`` (cutset events only),
   * static joins:      ``Rel_a = Dyn_a`` (all sibling dynamic events),
   * general case:      ``Rel_a = Dyn_a ∪ (Sta_a \\ C)`` (plus static
     guards);

   the triggering logic becomes an OR over AND gates, one per minimal
   subset ``A_i ⊆ Rel_a`` that fails the trigger gate given the static
   events of ``C`` (computed by :func:`repro.ft.mocus.constrained_mcs`);
3. trigger edges from those reconstructed gates, with newly pulled-in
   triggered events processed iteratively — reusing gates already
   modelled, otherwise falling back to the general case (Step 3 of the
   paper's construction).

Two degenerate outcomes short-circuit the chain analysis: a trigger gate
already failed by the static events of ``C`` makes its event *always
on* (its chain is replaced by the untriggered view), and a trigger gate
that can never fail makes the whole cutset's dynamic probability zero.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.core.classify import TriggerClass, classify_trigger_gate
from repro.core.sdft import DynamicBasicEvent, SdFaultTree
from repro.ctmc.triggered import TriggeredCtmc
from repro.errors import AnalysisError
from repro.ft.mocus import constrained_mcs
from repro.ft.tree import BasicEvent, Gate, GateType

__all__ = ["CutsetModel", "build_cutset_model"]

#: Name of the top AND gate of every ``FT_C``.
TOP_GATE = "FT_C::top"


@dataclass(frozen=True)
class CutsetModel:
    """The quantification model of one minimal cutset.

    ``model`` is ``None`` for purely static cutsets (probability is just
    ``static_factor``) and for infeasible ones (``trivially_zero``).
    The counters feed the experiment statistics of Section VI: how many
    dynamic events the cutset itself contributes and how many had to be
    added because its triggers lack static branching.
    """

    cutset: frozenset[str]
    model: SdFaultTree | None
    static_factor: float
    n_dynamic_in_cutset: int
    n_dynamic_in_model: int
    trivially_zero: bool = False
    always_on: frozenset[str] = frozenset()
    classes_used: tuple[TriggerClass, ...] = ()

    @property
    def n_added_dynamic(self) -> int:
        """Dynamic events pulled in beyond those of the cutset itself."""
        return self.n_dynamic_in_model - self.n_dynamic_in_cutset

    @property
    def dependencies(self) -> tuple[str, ...]:
        """Every basic event whose *content* this model's value reads.

        The cutset members (their probabilities enter the static factor)
        plus every event pulled into ``FT_C`` (chains and static
        guards).  Structure and trigger wiring are deliberately not
        encoded: the incremental engine only reuses records when the
        gate/trigger skeleton is unchanged, so under that precondition a
        record whose dependencies are untouched by an edit is guaranteed
        to re-quantify to the identical value.
        """
        names = set(self.cutset)
        if self.model is not None:
            names.update(self.model.static_events)
            names.update(self.model.dynamic_events)
        return tuple(sorted(names))

    @property
    def is_dynamic(self) -> bool:
        """Whether the cutset needs a Markov-chain quantification."""
        return self.n_dynamic_in_cutset > 0


@dataclass
class _Workspace:
    """Mutable state of one construction run."""

    dynamic_chains: dict[str, object] = field(default_factory=dict)
    static_guards: dict[str, float] = field(default_factory=dict)
    gates: dict[str, Gate] = field(default_factory=dict)
    triggers: dict[str, list[str]] = field(default_factory=dict)
    gate_model_of: dict[str, str] = field(default_factory=dict)
    always_on: set[str] = field(default_factory=set)
    classes_used: list[TriggerClass] = field(default_factory=list)
    trivially_zero: bool = False


def build_cutset_model(
    sdft: SdFaultTree,
    cutset: frozenset[str],
    classes: dict[str, TriggerClass] | None = None,
) -> CutsetModel:
    """Build ``FT_C`` for ``cutset`` following the paper's three steps.

    ``classes`` optionally supplies precomputed trigger-gate classes
    (from :func:`repro.core.classify.classification_report`) so repeated
    calls over a cutset list do not re-derive them.
    """
    dynamic_in_cutset = sorted(n for n in cutset if sdft.is_dynamic(n))
    static_in_cutset = sorted(n for n in cutset if sdft.is_static(n))
    unknown = set(cutset) - set(dynamic_in_cutset) - set(static_in_cutset)
    if unknown:
        raise AnalysisError(f"cutset contains unknown events: {sorted(unknown)}")

    static_factor = 1.0
    for name in static_in_cutset:
        static_factor *= sdft.static_events[name].probability

    if not dynamic_in_cutset:
        return CutsetModel(
            cutset, None, static_factor, 0, 0
        )

    work = _Workspace()
    for name in dynamic_in_cutset:
        work.dynamic_chains[name] = sdft.chain_of(name)

    # Step 2, iterated: process triggered events, cutset events first so
    # their trigger gates are modelled with their true (cheap) class and
    # can be reused by events added later (footnote 3 of the paper).
    first_round = set(dynamic_in_cutset)
    pending: deque[str] = deque(
        n for n in dynamic_in_cutset if n in sdft.trigger_of
    )
    processed: set[str] = set()
    sta_c = frozenset(static_in_cutset)

    while pending and not work.trivially_zero:
        event_name = pending.popleft()
        if event_name in processed:
            continue
        processed.add(event_name)
        _model_trigger(
            sdft,
            event_name,
            event_name in first_round,
            sta_c,
            cutset,
            classes,
            work,
            pending,
        )

    if work.trivially_zero:
        return CutsetModel(
            cutset,
            None,
            static_factor,
            len(dynamic_in_cutset),
            len(work.dynamic_chains),
            trivially_zero=True,
            classes_used=tuple(work.classes_used),
        )

    # Step 1 (done last so all nodes exist): the top AND gate.
    work.gates[TOP_GATE] = Gate(TOP_GATE, GateType.AND, tuple(dynamic_in_cutset))

    dynamic_events = []
    for name, chain in sorted(work.dynamic_chains.items()):
        dynamic_events.append(DynamicBasicEvent(name, chain))
    static_events = [
        BasicEvent(name, probability)
        for name, probability in sorted(work.static_guards.items())
    ]
    model = SdFaultTree(
        TOP_GATE,
        static_events,
        dynamic_events,
        work.gates.values(),
        {gate: tuple(events) for gate, events in work.triggers.items()},
        name=f"FT_C[{'+'.join(sorted(cutset))}]",
    )
    return CutsetModel(
        cutset,
        model,
        static_factor,
        len(dynamic_in_cutset),
        len(work.dynamic_chains),
        always_on=frozenset(work.always_on),
        classes_used=tuple(work.classes_used),
    )


def _model_trigger(
    sdft: SdFaultTree,
    event_name: str,
    in_first_round: bool,
    sta_c: frozenset[str],
    cutset: frozenset[str],
    classes: dict[str, TriggerClass] | None,
    work: _Workspace,
    pending: deque[str],
) -> None:
    """Model the triggering gate of one event inside ``FT_C`` (Step 2)."""
    gate_name = sdft.trigger_of[event_name]

    # Reuse a trigger gate modelled for another event of the same gate.
    existing = work.gate_model_of.get(gate_name)
    if existing is not None:
        work.triggers.setdefault(existing, []).append(event_name)
        return

    if in_first_round:
        if classes is not None and gate_name in classes:
            trigger_class = classes[gate_name]
        else:
            trigger_class = classify_trigger_gate(sdft, gate_name)
    else:
        # Step 3: a gate first reached through an added event is modelled
        # with the general case, irrespective of its syntactic class.
        trigger_class = TriggerClass.GENERAL
    work.classes_used.append(trigger_class)

    dyn_under = sdft.dynamic_under(gate_name)
    if trigger_class is TriggerClass.STATIC_BRANCHING:
        relevant = dyn_under & cutset
    elif trigger_class in (
        TriggerClass.STATIC_JOINS,
        TriggerClass.STATIC_JOINS_UNIFORM,
    ):
        relevant = dyn_under
    else:
        relevant = dyn_under | (sdft.static_under(gate_name) - cutset)

    assumed = sta_c & sdft.static_under(gate_name)
    minimal_sets = constrained_mcs(
        sdft.structure, gate_name, frozenset(relevant), assumed
    )
    if minimal_sets is True:
        # The static events of C alone fail the trigger: the event is on
        # from time 0 in every counted run — drop the on/off structure.
        chain = work.dynamic_chains[event_name]
        assert isinstance(chain, TriggeredCtmc)
        work.dynamic_chains[event_name] = chain.untriggered_view()
        work.always_on.add(event_name)
        return
    if minimal_sets is False:
        # The trigger can never fail in the counted runs, so the event
        # can never be switched on, hence never failed: p̃(C) = 0.
        work.trivially_zero = True
        return

    # Build OR-over-ANDs with the minimal trigger sets as its cutsets.
    model_gate = f"FT_C::trig::{gate_name}"
    disjuncts: list[str] = []
    for i, subset in enumerate(sorted(minimal_sets, key=sorted)):
        members = tuple(sorted(subset))
        for member in members:
            _include_event(sdft, member, work, pending)
        if len(members) == 1:
            disjuncts.append(members[0])
        else:
            and_name = f"{model_gate}#and{i}"
            work.gates[and_name] = Gate(and_name, GateType.AND, members)
            disjuncts.append(and_name)
    work.gates[model_gate] = Gate(
        model_gate,
        GateType.OR,
        tuple(disjuncts),
        description=f"timing of trigger {gate_name}",
    )
    work.gate_model_of[gate_name] = model_gate
    work.triggers.setdefault(model_gate, []).append(event_name)


def _include_event(
    sdft: SdFaultTree, name: str, work: _Workspace, pending: deque[str]
) -> None:
    """Add an event referenced by a trigger model to the workspace."""
    if sdft.is_static(name):
        work.static_guards.setdefault(
            name, sdft.static_events[name].probability
        )
        return
    if name not in work.dynamic_chains:
        work.dynamic_chains[name] = sdft.chain_of(name)
        if name in sdft.trigger_of:
            pending.append(name)
