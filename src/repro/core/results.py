"""Result containers of the end-to-end SD fault-tree analysis.

Everything the paper's experiment tables and figures are built from:
the overall failure frequency, per-cutset records with chain sizes and
solve times, the phase timing breakdown, and the histogram of dynamic
events per cutset (Figure 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.classify import ClassificationReport
from repro.core.quantify import McsQuantification
from repro.robust.health import HealthReport

if TYPE_CHECKING:  # pragma: no cover - typing only (keeps imports light)
    from repro.lint.engine import LintReport

__all__ = ["METHODS", "PerfStats", "Timings", "AnalysisResult", "served_interval"]

#: Valid ``AnalysisResult.method`` labels — every served number carries
#: its error model: ``"bdd-exact"`` (exact Shannon-expansion value from
#: the BDD static engine), ``"mcs-rare-event"`` (first-order sum over
#: quantified cutsets, a provable over-approximation), or
#: ``"mcs-min-cut-ub"`` (the min-cut upper bound, served when the
#: rare-event sum overshoots 1.0).
METHODS = ("bdd-exact", "mcs-rare-event", "mcs-min-cut-ub")


def served_interval(
    records: "tuple[McsQuantification, ...] | list[McsQuantification]",
    total: float,
    method: str,
    cutoff: float,
    remainder: float,
) -> tuple[float, float]:
    """``(lower, upper)`` bracket for a served total, by its method.

    The one definition shared by
    :meth:`AnalysisResult.failure_probability_interval` and the
    analyzer's final P3 guard, so the pipeline verifies exactly the
    bracket it later reports:

    * ``bdd-exact`` — the value is exact; the interval is degenerate
      (cutset records approximate the same number from above, so the
      record sum does *not* bound it from below);
    * ``mcs-rare-event`` — record lower bounds to record values plus the
      MOCUS remainder, as before;
    * ``mcs-min-cut-ub`` — the record sum overshot 1.0, so the sum-based
      lower end is meaningless; the floor becomes the largest single
      record contribution (sound for coherent trees) and the ceiling is
      capped at 1.0.
    """
    if method == "bdd-exact":
        return (total, total)
    lower = 0.0
    upper = 0.0
    largest_single = 0.0
    for record in records:
        if record.probability > cutoff:
            upper += record.probability
            if record.bounded and record.lower_bound is not None:
                contribution = record.lower_bound
            else:
                contribution = record.probability
            lower += contribution
            largest_single = max(largest_single, contribution)
    if method == "mcs-min-cut-ub":
        return (largest_single, min(1.0, total + remainder))
    return (lower, upper + remainder)


@dataclass(frozen=True)
class PerfStats:
    """Execution statistics of the quantification phase.

    The dedup numbers answer "how much solving did signature sharing
    save": ``dynamic_solves`` counts cutsets that needed a chain value,
    of which only ``unique_models_solved`` distinct models were actually
    solved; ``dedup_ratio`` is the avoided fraction.  They are derived
    from the shared solve cache, so serial and parallel runs of the same
    analysis report identical dedup numbers.

    ``jobs`` and ``worker_faults`` describe *how* the run executed:
    worker count of the solver farm (1 = in-process serial loop) and how
    many pool tasks failed in a worker and were recovered by re-running
    their cutsets in the parent.  They never influence the analysis
    values themselves.
    """

    jobs: int = 1
    dynamic_solves: int = 0
    unique_models_solved: int = 0
    dedup_ratio: float = 0.0
    worker_faults: int = 0

    def summary(self) -> str:
        """One human-readable line for the run report."""
        line = (
            f"dedup: {self.unique_models_solved} unique chain models solved "
            f"for {self.dynamic_solves} dynamic solves "
            f"({self.dedup_ratio:.0%} shared), jobs={self.jobs}"
        )
        if self.worker_faults:
            line += f", {self.worker_faults} worker faults recovered"
        return line


@dataclass(frozen=True)
class Timings:
    """Wall-clock seconds of the three pipeline phases."""

    translation_seconds: float
    mcs_generation_seconds: float
    quantification_seconds: float

    @property
    def total_seconds(self) -> float:
        """Total analysis time (all three phases)."""
        return (
            self.translation_seconds
            + self.mcs_generation_seconds
            + self.quantification_seconds
        )


@dataclass(frozen=True)
class AnalysisResult:
    """Outcome of one SD fault-tree analysis.

    ``failure_probability`` is the served top-event probability and
    ``method`` labels its error model (:data:`METHODS`): exact for
    static trees quantified by the BDD engine, the rare-event sum over
    quantified cutsets otherwise, or the min-cut upper bound when that
    sum overshoots 1.0.  ``rare_event_sum`` always carries the raw
    record sum so the classical bracket (sum >= exact) stays auditable.
    ``static_bound`` is the sound aggregation of the cutset list under
    the worst-case static probabilities (what the translation alone
    would report — always an upper bound on ``failure_probability``).

    ``health`` enumerates every recovery action of the run
    (degradations, retries, budget hits — :mod:`repro.robust.health`);
    a degraded run is never silently indistinguishable from a clean
    one.  ``mcs_truncated`` marks a budget-shortened cutset list and
    ``mcs_remainder_bound`` conservatively bounds the un-enumerated
    probability mass, which widens the reported interval's upper end.
    """

    failure_probability: float
    static_bound: float
    horizon: float
    cutoff: float
    records: tuple[McsQuantification, ...]
    timings: Timings
    classification: ClassificationReport
    cache_hits: int = 0
    cache_misses: int = 0
    health: HealthReport = HealthReport()
    mcs_truncated: bool = False
    mcs_remainder_bound: float = 0.0
    perf: PerfStats = PerfStats()
    #: Metrics snapshot of the run (``repro.obs``), present only when
    #: the analysis collected metrics; never influences the values above.
    metrics: "dict | None" = None
    #: The pre-flight lint report, present only when the analysis ran
    #: with ``AnalysisOptions(lint=True)``; a model with error-level
    #: findings never reaches this container (``LintError`` is raised).
    lint: "LintReport | None" = None
    #: Error model of :attr:`failure_probability` (:data:`METHODS`).
    method: str = "mcs-rare-event"
    #: Raw rare-event sum over the served records — equals
    #: :attr:`failure_probability` under ``mcs-rare-event``, brackets it
    #: from above under the other two methods.
    rare_event_sum: float | None = None
    #: Total BDD nodes across all compilation scopes (``bdd-exact`` only).
    bdd_nodes: int = 0
    #: Ordering heuristic the BDD top scope compiled under.
    bdd_ordering: str = ""
    #: Module scopes the BDD compilation decomposed into.
    bdd_modules: int = 0

    # ------------------------------------------------------------------
    # Aggregated views used by the experiment harnesses
    # ------------------------------------------------------------------

    @property
    def n_cutsets(self) -> int:
        """Number of quantified minimal cutsets."""
        return len(self.records)

    @property
    def n_dynamic_cutsets(self) -> int:
        """Cutsets containing at least one dynamic event (need a chain solve)."""
        return sum(1 for r in self.records if r.is_dynamic)

    @property
    def n_bounded_cutsets(self) -> int:
        """Cutsets quantified by the interval fallback (oversized chains)."""
        return sum(1 for r in self.records if r.bounded)

    @property
    def n_degraded_cutsets(self) -> int:
        """Cutsets answered below the exact/lumped rungs of the ladder."""
        return sum(
            1
            for r in self.records
            if r.rung in ("monte_carlo", "bound", "skipped")
        )

    @property
    def is_degraded(self) -> bool:
        """Whether any part of the result is not the clean exact answer."""
        return (
            self.mcs_truncated
            or self.n_degraded_cutsets > 0
            or not self.health.is_clean
        )

    def failure_probability_interval(self) -> tuple[float, float]:
        """``(lower, upper)`` bounds of the served failure probability.

        Method-aware (see :func:`served_interval`): degenerate for
        ``bdd-exact`` values, record-sum based for ``mcs-rare-event``
        (bounded cutsets contribute their interval ends, a truncated
        cutset list widens the upper end by the remainder bound), and
        largest-single-cutset to capped-MCUB for ``mcs-min-cut-ub``.
        """
        return served_interval(
            self.records,
            self.failure_probability,
            self.method,
            self.cutoff,
            self.mcs_remainder_bound,
        )

    def fussell_vesely(self) -> dict[str, float]:
        """Time-aware Fussell–Vesely importance per basic event.

        The fraction of the quantified rare-event sum flowing through
        cutsets containing each event — the dynamic counterpart of the
        static FV measure, computed from the already-quantified list at
        no extra solving cost (the cheap re-evaluation the paper's
        concluding remark highlights).
        """
        total = self.failure_probability
        if total <= 0.0:
            return {}
        mass: dict[str, float] = {}
        for record in self.records:
            if record.probability <= self.cutoff:
                continue
            for name in record.cutset:
                mass[name] = mass.get(name, 0.0) + record.probability
        return {name: value / total for name, value in sorted(mass.items())}

    def dynamic_event_histogram(self) -> dict[int, int]:
        """Figure 2's histogram: cutset count by dynamic events *in the model*.

        Only dynamic cutsets appear; the key is the number of dynamic
        events in the cutset's ``FT_C`` (cutset events plus added ones).
        """
        histogram: dict[int, int] = {}
        for record in self.records:
            if not record.is_dynamic:
                continue
            key = record.n_dynamic_in_model
            histogram[key] = histogram.get(key, 0) + 1
        return dict(sorted(histogram.items()))

    def mean_dynamic_events(self) -> tuple[float, float]:
        """Average dynamic events per dynamic cutset: ``(total, added)``.

        The two statistics the paper quotes for the BWR study ("the
        average number of dynamic events is 3.02 out of which 1.78 are
        added because the triggering gates do not have static
        branching").
        """
        dynamic_records = [r for r in self.records if r.is_dynamic]
        if not dynamic_records:
            return (0.0, 0.0)
        total = sum(r.n_dynamic_in_model for r in dynamic_records)
        added = sum(r.n_added_dynamic for r in dynamic_records)
        return (total / len(dynamic_records), added / len(dynamic_records))

    def top_contributors(self, n: int = 10) -> list[McsQuantification]:
        """The ``n`` cutsets with the highest quantified probability."""
        return sorted(self.records, key=lambda r: -r.probability)[:n]

    def summary(self) -> str:
        """A short human-readable report."""
        mean_total, mean_added = self.mean_dynamic_events()
        label = f"failure probability ({self.method}):"
        lines = [
            f"{label:<34}{self.failure_probability:.3e}",
            f"{'static worst-case bound:':<34}{self.static_bound:.3e}",
            f"horizon: {self.horizon} h, cutoff: {self.cutoff:.0e}",
            f"cutsets: {self.n_cutsets} total, "
            f"{self.n_dynamic_cutsets} dynamic",
            f"dynamic events per dynamic cutset: {mean_total:.2f} "
            f"(of which {mean_added:.2f} added by trigger modelling)",
            f"chain-solve cache: {self.cache_hits} hits / "
            f"{self.cache_misses} misses",
            self.perf.summary(),
            f"time: translation {self.timings.translation_seconds:.2f}s, "
            f"MCS {self.timings.mcs_generation_seconds:.2f}s, "
            f"quantification {self.timings.quantification_seconds:.2f}s",
        ]
        raw_sum = (
            self.rare_event_sum
            if self.rare_event_sum is not None
            else self.failure_probability
        )
        if self.method == "bdd-exact":
            lines.append(
                f"static engine: exact BDD ({self.bdd_nodes} nodes, "
                f"order {self.bdd_ordering}, {self.bdd_modules} modules); "
                f"rare-event sum {raw_sum:.3e}"
            )
        elif self.method == "mcs-min-cut-ub":
            lines.append(
                f"estimator: min-cut upper bound served (rare-event sum "
                f"{raw_sum:.3e} overshoots 1.0)"
            )
        if self.lint is not None and self.lint.diagnostics:
            lines.append(f"lint: {self.lint.summary_line()}")
        if self.mcs_truncated:
            lines.append(
                f"cutset list TRUNCATED by budget; un-enumerated mass "
                f"<= {self.mcs_remainder_bound:.3e}"
            )
        if self.is_degraded:
            lower, upper = self.failure_probability_interval()
            lines.append(
                f"DEGRADED result: {self.n_degraded_cutsets} cutsets on "
                f"fallback rungs; true value in [{lower:.3e}, {upper:.3e}]"
            )
            lines.append(self.health.summary())
        if self.metrics is not None:
            from repro.obs.report import metric_highlights

            highlights = metric_highlights(self.metrics)
            if highlights:
                lines.append("metrics:")
                lines.extend(f"  {line}" for line in highlights)
        return "\n".join(lines)
