"""Classification of triggering gates (paper, Section V-A).

The efficiency of the per-cutset quantification hinges on two syntactic
conditions on the subtree of each triggering gate:

* **static branching** — every OR gate in the subtree has at most one
  dynamic child.  Then only the cutset's own dynamic events matter for
  trigger timing (``Rel_a = Dyn_a ∩ C``).
* **static joins** — no AND gate in the subtree has a dynamic child
  (dynamic events combine disjunctively only).  Then all dynamic events
  of the subtree matter (``Rel_a = Dyn_a``).  With the additional
  **uniform triggering** property — all dynamic events under the gate
  are triggered by one common gate — chains of such triggers stay cheap.

Everything else is the **general case**: trigger timing may depend on
static events of the subtree too (``Rel_a = Dyn_a ∪ (Sta_a \\ C)``).

ATLEAST gates degenerate to OR (k=1) or AND (k=n); proper voting gates
are treated conservatively as violating both conditions, which routes
the affected triggers to the general case — correct, merely slower.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.sdft import SdFaultTree
from repro.ft.tree import GateType

if TYPE_CHECKING:
    from repro.ft.tree import Gate

__all__ = [
    "TriggerClass",
    "classify_trigger_gate",
    "has_static_branching",
    "has_static_joins",
    "has_uniform_triggering",
    "classification_report",
    "ClassificationReport",
]


class TriggerClass(enum.Enum):
    """Which quantification strategy a triggering gate admits.

    Ordered from cheapest to most expensive: ``STATIC_BRANCHING``
    restricts trigger modelling to cutset events; ``STATIC_JOINS``
    (ideally with uniform triggering) pulls in the sibling dynamic
    events; ``GENERAL`` pulls in static guards as well.
    """

    STATIC_BRANCHING = "static-branching"
    STATIC_JOINS_UNIFORM = "static-joins-uniform"
    STATIC_JOINS = "static-joins"
    GENERAL = "general"


def _effective_type(gate: "Gate") -> GateType:
    """Treat degenerate ATLEAST gates as the AND/OR they equal."""
    if gate.gate_type is not GateType.ATLEAST:
        return gate.gate_type
    assert gate.k is not None
    if gate.k == 1:
        return GateType.OR
    if gate.k == len(gate.children):
        return GateType.AND
    return GateType.ATLEAST


def has_static_branching(sdft: SdFaultTree, gate_name: str) -> bool:
    """Whether every OR gate under ``gate_name`` has <= 1 dynamic child.

    Proper voting gates with a dynamic child fail the check (they branch
    like an OR).
    """
    for name in sdft.structure.gates_under(gate_name):
        gate = sdft.structure.gates[name]
        effective = _effective_type(gate)
        dynamic_children = sum(1 for c in gate.children if sdft.dynamic_under_node(c))
        if effective is GateType.OR and dynamic_children > 1:
            return False
        if effective is GateType.ATLEAST and dynamic_children > 0:
            return False
    return True


def has_static_joins(sdft: SdFaultTree, gate_name: str) -> bool:
    """Whether no AND gate under ``gate_name`` has a dynamic child.

    Proper voting gates with a dynamic child fail the check (they join
    like an AND).
    """
    for name in sdft.structure.gates_under(gate_name):
        gate = sdft.structure.gates[name]
        effective = _effective_type(gate)
        dynamic_children = sum(1 for c in gate.children if sdft.dynamic_under_node(c))
        if effective is GateType.AND and dynamic_children > 0:
            return False
        if effective is GateType.ATLEAST and dynamic_children > 0:
            return False
    return True


def has_uniform_triggering(sdft: SdFaultTree, gate_name: str) -> bool:
    """Whether all dynamic events under the gate share one triggering gate.

    Requires every dynamic event in the subtree to be triggered, and all
    by the same gate (Section V-A).
    """
    dynamic = sdft.dynamic_under(gate_name)
    if not dynamic:
        return True
    gates = {sdft.trigger_of.get(name) for name in dynamic}
    return None not in gates and len(gates) == 1


def classify_trigger_gate(sdft: SdFaultTree, gate_name: str) -> TriggerClass:
    """The strongest condition the triggering gate satisfies."""
    if has_static_branching(sdft, gate_name):
        return TriggerClass.STATIC_BRANCHING
    if has_static_joins(sdft, gate_name):
        if has_uniform_triggering(sdft, gate_name):
            return TriggerClass.STATIC_JOINS_UNIFORM
        return TriggerClass.STATIC_JOINS
    return TriggerClass.GENERAL


@dataclass(frozen=True)
class ClassificationReport:
    """Per-trigger classification of a whole SD fault tree.

    ``by_gate`` maps each triggering gate to its class; the boolean
    flags summarise what the user should expect of quantification cost
    (the prediction the paper says can be "indicated to the user").
    """

    by_gate: dict[str, TriggerClass]

    @property
    def all_efficient(self) -> bool:
        """True when every trigger is static-branching or uniform static-joins."""
        return all(
            c in (TriggerClass.STATIC_BRANCHING, TriggerClass.STATIC_JOINS_UNIFORM)
            for c in self.by_gate.values()
        )

    @property
    def any_general(self) -> bool:
        """True when some trigger needs the general (most expensive) case."""
        return any(c is TriggerClass.GENERAL for c in self.by_gate.values())

    def count(self, trigger_class: TriggerClass) -> int:
        """Number of triggering gates with the given class."""
        return sum(1 for c in self.by_gate.values() if c is trigger_class)


def classification_report(sdft: SdFaultTree) -> ClassificationReport:
    """Classify every triggering gate of ``sdft``."""
    return ClassificationReport(
        {gate: classify_trigger_gate(sdft, gate) for gate in sdft.triggers}
    )
