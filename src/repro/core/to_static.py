"""Translation of an SD fault tree into a static one (Section V-B).

The static tree ``FT̄`` has the same minimal cutsets as the SD tree and
feeds the unmodified MOCUS machinery:

* every dynamic basic event becomes a static basic event whose
  probability is the worst case of :mod:`repro.core.worst_case`;
* every trigger edge ``g --> b`` becomes an AND gate: each reference to
  ``b`` in the tree is redirected to a fresh gate ``AND(b, g)`` — the
  event can only contribute to a cutset together with its trigger.

Acyclicity of the construction is inherited from the SD tree's
requirement that the trigger-extended graph is acyclic: an edge from the
new AND gate to ``g`` mirrors exactly the reversed trigger edge
``b -> g``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.sdft import SdFaultTree
from repro.core.worst_case import worst_case_probabilities
from repro.ft.tree import BasicEvent, FaultTree, Gate, GateType

__all__ = ["StaticTranslation", "to_static"]

#: Suffix of the AND gates introduced for trigger edges.
TRIGGER_GATE_SUFFIX = "#triggered"


@dataclass(frozen=True)
class StaticTranslation:
    """The static tree ``FT̄`` plus the data used to build it.

    ``worst_case`` maps each dynamic event to the probability assigned
    to its static replacement — useful for diagnostics and for reusing
    the transient computations later in the pipeline.
    """

    tree: FaultTree
    worst_case: dict[str, float]


def to_static(sdft: SdFaultTree, horizon: float) -> StaticTranslation:
    """Build the static tree ``FT̄`` of ``sdft`` for the given horizon."""
    worst_case = worst_case_probabilities(sdft, horizon)

    events: list[BasicEvent] = list(sdft.static_events.values())
    for name, event in sdft.dynamic_events.items():
        events.append(
            BasicEvent(name, worst_case[name], event.description or f"dynamic {name}")
        )

    # Redirect references to triggered events through fresh AND gates.
    redirect: dict[str, str] = {}
    trigger_gates: list[Gate] = []
    for event_name, gate_name in sorted(sdft.trigger_of.items()):
        and_name = f"{event_name}{TRIGGER_GATE_SUFFIX}"
        trigger_gates.append(
            Gate(
                and_name,
                GateType.AND,
                (event_name, gate_name),
                description=f"{event_name} requires its trigger {gate_name}",
            )
        )
        redirect[event_name] = and_name

    gates: list[Gate] = list(trigger_gates)
    for gate in sdft.gates.values():
        children = tuple(redirect.get(c, c) for c in gate.children)
        gates.append(Gate(gate.name, gate.gate_type, children, gate.k, gate.description))

    tree = FaultTree(sdft.top, events, gates, name=f"{sdft.name}#static")
    return StaticTranslation(tree, worst_case)
