"""The paper's contribution: SD fault trees and their scalable analysis.

Model construction (:class:`SdFaultTreeBuilder`), trigger-gate
classification, the static translation, per-cutset quantification and
the end-to-end :func:`analyze` pipeline.
"""

from repro.core.analyzer import (
    AnalysisOptions,
    analyze,
    analyze_curve,
    analyze_exact,
    analyze_static,
)
from repro.core.bounds import ProbabilityInterval, bound_cutset
from repro.core.classify import (
    ClassificationReport,
    TriggerClass,
    classification_report,
    classify_trigger_gate,
)
from repro.core.cut_sequences import CutCompletion, completion_distribution
from repro.core.cutset_model import CutsetModel, build_cutset_model
from repro.core.downtime import (
    DowntimeResult,
    analyze_expected_downtime,
    exact_expected_downtime,
)
from repro.core.quantify import (
    McsQuantification,
    QuantificationCache,
    quantify_cutset,
)
from repro.core.results import AnalysisResult, Timings
from repro.core.sdft import DynamicBasicEvent, SdFaultTree, SdFaultTreeBuilder
from repro.core.sensitivity import RateSensitivity, rate_sensitivity
from repro.core.to_static import StaticTranslation, to_static
from repro.core.worst_case import worst_case_probabilities, worst_case_probability

__all__ = [
    "AnalysisOptions",
    "AnalysisResult",
    "ClassificationReport",
    "CutCompletion",
    "CutsetModel",
    "DowntimeResult",
    "DynamicBasicEvent",
    "McsQuantification",
    "ProbabilityInterval",
    "QuantificationCache",
    "RateSensitivity",
    "bound_cutset",
    "SdFaultTree",
    "SdFaultTreeBuilder",
    "StaticTranslation",
    "Timings",
    "TriggerClass",
    "analyze",
    "analyze_curve",
    "analyze_exact",
    "analyze_expected_downtime",
    "analyze_static",
    "build_cutset_model",
    "classification_report",
    "classify_trigger_gate",
    "completion_distribution",
    "exact_expected_downtime",
    "quantify_cutset",
    "rate_sensitivity",
    "to_static",
    "worst_case_probabilities",
    "worst_case_probability",
]
