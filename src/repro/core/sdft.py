"""SD fault trees: static and dynamic basic events in one model.

The paper's central formalism (Section III-B).  An SD fault tree is a
fault-tree DAG whose leaves are partitioned into *static* basic events
(a plain failure probability) and *dynamic* basic events (a CTMC
describing degradation and repair over time).  A failure of any gate may
*trigger* one or more dynamic basic events — switching their chains from
off-states to on-states — and a recovery of the gate untriggers them.

Structural invariants enforced here (all from Section III-B):

* every dynamic basic event is triggered by at most one gate;
* triggered events carry a :class:`~repro.ctmc.triggered.TriggeredCtmc`
  (untriggered dynamic events carry a plain chain that starts on);
* the fault-tree DAG extended with *reversed* trigger edges
  ``(event -> triggering gate)`` is acyclic, ruling out triggering
  deadlocks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.ctmc.chain import Ctmc
from repro.ctmc.triggered import TriggeredCtmc
from repro.errors import (
    CyclicModelError,
    DuplicateNameError,
    ModelError,
    TriggerError,
    UnknownNodeError,
)
from repro.ft.tree import BasicEvent, FaultTree, Gate, GateType

__all__ = ["DynamicBasicEvent", "SdFaultTree", "SdFaultTreeBuilder"]


@dataclass(frozen=True)
class DynamicBasicEvent:
    """A dynamic basic event: a name bound to a failure CTMC.

    ``chain`` is a plain :class:`~repro.ctmc.chain.Ctmc` for events that
    operate from time zero, or a :class:`~repro.ctmc.triggered.TriggeredCtmc`
    for events switched on by a trigger.
    """

    name: str
    chain: Ctmc
    description: str = ""

    @property
    def is_triggerable(self) -> bool:
        """Whether the chain has on/off structure (can be a trigger target)."""
        return isinstance(self.chain, TriggeredCtmc)


class SdFaultTree:
    """An immutable SD fault tree.

    Parameters
    ----------
    top:
        Name of the top gate.
    static_events:
        The static basic events with their probabilities.
    dynamic_events:
        The dynamic basic events with their chains.
    gates:
        The gate structure (shared :class:`~repro.ft.tree.Gate` objects).
    triggers:
        Mapping from gate name to the dynamic basic events it triggers.
    """

    def __init__(
        self,
        top: str,
        static_events: Iterable[BasicEvent],
        dynamic_events: Iterable[DynamicBasicEvent],
        gates: Iterable[Gate],
        triggers: Mapping[str, Iterable[str]] | None = None,
        name: str = "sd-fault-tree",
    ) -> None:
        self.name = name
        self.static_events: dict[str, BasicEvent] = {}
        for event in static_events:
            if event.name in self.static_events:
                raise DuplicateNameError(f"duplicate static event {event.name!r}")
            self.static_events[event.name] = event
        self.dynamic_events: dict[str, DynamicBasicEvent] = {}
        for event in dynamic_events:
            if event.name in self.dynamic_events or event.name in self.static_events:
                raise DuplicateNameError(f"duplicate event {event.name!r}")
            self.dynamic_events[event.name] = event

        # The structural view: one static FaultTree over *all* basic
        # events.  Dynamic events get probability 0 here — the view is
        # used for structure only, never for quantification.
        placeholder = [
            BasicEvent(e.name, 0.0, e.description)
            for e in self.dynamic_events.values()
        ]
        self.structure = FaultTree(
            top,
            list(self.static_events.values()) + placeholder,
            gates,
            name=name,
        )
        self.top = top

        self.triggers: dict[str, tuple[str, ...]] = {}
        self.trigger_of: dict[str, str] = {}
        for gate_name, events in (triggers or {}).items():
            if not self.structure.is_gate(gate_name):
                raise UnknownNodeError(
                    f"trigger source {gate_name!r} is not a gate of the tree"
                )
            event_names = tuple(events)
            if not event_names:
                continue
            self.triggers[gate_name] = event_names
            for event_name in event_names:
                if event_name in self.trigger_of:
                    raise TriggerError(
                        f"dynamic event {event_name!r} is triggered by both "
                        f"{self.trigger_of[event_name]!r} and {gate_name!r}; "
                        f"connect the gates with a new OR gate and let that "
                        f"gate be the trigger"
                    )
                self.trigger_of[event_name] = gate_name
        self._validate_triggers()

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------

    def _validate_triggers(self) -> None:
        for event_name, gate_name in self.trigger_of.items():
            event = self.dynamic_events.get(event_name)
            if event is None:
                raise TriggerError(
                    f"trigger target {event_name!r} is not a dynamic basic event"
                )
            if not event.is_triggerable:
                raise TriggerError(
                    f"dynamic event {event_name!r} is triggered by "
                    f"{gate_name!r} but its chain has no on/off structure "
                    f"(use a TriggeredCtmc)"
                )
        for event in self.dynamic_events.values():
            if event.is_triggerable and event.name not in self.trigger_of:
                raise TriggerError(
                    f"dynamic event {event.name!r} has a triggered chain but "
                    f"no gate triggers it"
                )
        self._check_trigger_acyclic()

    def _check_trigger_acyclic(self) -> None:
        """Reject cyclic triggering (Section III-B).

        The tree edges point from gates to children; a trigger adds the
        *reversed* edge from the triggered event up to its triggering
        gate.  A cycle in the combined graph is a triggering deadlock.
        """
        successors: dict[str, list[str]] = {}
        for gate in self.structure.gates.values():
            successors[gate.name] = list(gate.children)
        for event_name, gate_name in self.trigger_of.items():
            successors.setdefault(event_name, []).append(gate_name)

        # Iterative three-colour DFS over the combined graph.
        WHITE, GREY, BLACK = 0, 1, 2
        colour: dict[str, int] = {}
        for start in successors:
            if colour.get(start, WHITE) != WHITE:
                continue
            stack: list[tuple[str, int]] = [(start, 0)]
            colour[start] = GREY
            while stack:
                node, child_index = stack[-1]
                children = successors.get(node, [])
                if child_index == len(children):
                    colour[node] = BLACK
                    stack.pop()
                    continue
                stack[-1] = (node, child_index + 1)
                child = children[child_index]
                state = colour.get(child, WHITE)
                if state == GREY:
                    raise CyclicModelError(
                        f"cyclic triggering detected through {child!r}: a group "
                        f"of dynamic events can only fail after each other"
                    )
                if state == WHITE:
                    colour[child] = GREY
                    stack.append((child, 0))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def gates(self) -> Mapping[str, Gate]:
        """All gates, keyed by name."""
        return self.structure.gates

    @property
    def all_event_names(self) -> frozenset[str]:
        """Names of all basic events, static and dynamic."""
        return frozenset(self.static_events) | frozenset(self.dynamic_events)

    def is_dynamic(self, name: str) -> bool:
        """Whether ``name`` is a dynamic basic event."""
        return name in self.dynamic_events

    def is_static(self, name: str) -> bool:
        """Whether ``name`` is a static basic event."""
        return name in self.static_events

    def dynamic_under(self, gate_name: str) -> frozenset[str]:
        """Dynamic basic events in the subtree of ``gate_name`` (``Dyn_a``)."""
        return frozenset(
            n for n in self.structure.events_under(gate_name) if self.is_dynamic(n)
        )

    def dynamic_under_node(self, name: str) -> bool:
        """Whether the node (gate or event) has a dynamic event in its subtree.

        A gate with this property is called *dynamic* in Section V-A; for
        a basic event the check degenerates to "is it dynamic itself".
        """
        return any(self.is_dynamic(n) for n in self.structure.events_under(name))

    def static_under(self, gate_name: str) -> frozenset[str]:
        """Static basic events in the subtree of ``gate_name`` (``Sta_a``)."""
        return frozenset(
            n for n in self.structure.events_under(gate_name) if self.is_static(n)
        )

    def chain_of(self, event_name: str) -> Ctmc:
        """The CTMC of a dynamic basic event."""
        try:
            return self.dynamic_events[event_name].chain
        except KeyError:
            raise UnknownNodeError(
                f"{event_name!r} is not a dynamic basic event"
            ) from None

    def triggered_events(self) -> frozenset[str]:
        """Names of all dynamic events that have a triggering gate."""
        return frozenset(self.trigger_of)

    def __repr__(self) -> str:
        return (
            f"SdFaultTree({self.name!r}, {len(self.static_events)} static, "
            f"{len(self.dynamic_events)} dynamic, "
            f"{len(self.structure.gates)} gates, "
            f"{len(self.trigger_of)} triggered)"
        )


class SdFaultTreeBuilder:
    """Fluent construction of :class:`SdFaultTree` models.

    Mirrors :class:`repro.ft.builder.FaultTreeBuilder` with two extra
    declarations: :meth:`dynamic_event` and :meth:`trigger`.
    """

    def __init__(self, name: str = "sd-fault-tree") -> None:
        self.name = name
        self._static: dict[str, BasicEvent] = {}
        self._dynamic: dict[str, DynamicBasicEvent] = {}
        self._gates: dict[str, Gate] = {}
        self._triggers: dict[str, list[str]] = {}

    def static_event(
        self, name: str, probability: float, description: str = ""
    ) -> "SdFaultTreeBuilder":
        """Declare a static basic event."""
        self._check_fresh(name)
        self._static[name] = BasicEvent(name, probability, description)
        return self

    def dynamic_event(
        self, name: str, chain: Ctmc, description: str = ""
    ) -> "SdFaultTreeBuilder":
        """Declare a dynamic basic event with its CTMC."""
        self._check_fresh(name)
        self._dynamic[name] = DynamicBasicEvent(name, chain, description)
        return self

    def gate(
        self,
        name: str,
        gate_type: GateType,
        children: Iterable[str],
        k: int | None = None,
        description: str = "",
    ) -> "SdFaultTreeBuilder":
        """Declare a gate of an explicit type."""
        self._check_fresh(name)
        self._gates[name] = Gate(name, gate_type, tuple(children), k, description)
        return self

    def and_(self, name: str, *children: str, description: str = "") -> "SdFaultTreeBuilder":
        """Declare an AND gate."""
        return self.gate(name, GateType.AND, children, description=description)

    def or_(self, name: str, *children: str, description: str = "") -> "SdFaultTreeBuilder":
        """Declare an OR gate."""
        return self.gate(name, GateType.OR, children, description=description)

    def atleast(
        self, name: str, k: int, *children: str, description: str = ""
    ) -> "SdFaultTreeBuilder":
        """Declare a k-of-n voting gate."""
        return self.gate(name, GateType.ATLEAST, children, k=k, description=description)

    def has_node(self, name: str) -> bool:
        """Return whether a node of this name has been declared."""
        return (
            name in self._static or name in self._dynamic or name in self._gates
        )

    def trigger(self, gate_name: str, *event_names: str) -> "SdFaultTreeBuilder":
        """Declare that a failure of ``gate_name`` triggers the given events."""
        if not event_names:
            raise ModelError("trigger() needs at least one event name")
        self._triggers.setdefault(gate_name, []).extend(event_names)
        return self

    def build(self, top: str) -> SdFaultTree:
        """Assemble and validate the SD fault tree."""
        return SdFaultTree(
            top,
            self._static.values(),
            self._dynamic.values(),
            self._gates.values(),
            self._triggers,
            name=self.name,
        )

    def _check_fresh(self, name: str) -> None:
        if name in self._static or name in self._dynamic or name in self._gates:
            raise DuplicateNameError(f"node {name!r} declared twice")
