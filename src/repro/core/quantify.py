"""Quantification of minimal cutsets (Section V-C, quantification step).

For a cutset model built by :mod:`repro.core.cutset_model`:

* a purely static cutset has ``p̃(C) = prod p(a)``;
* a dynamic cutset needs the product chain of its small ``FT_C`` and a
  transient first-passage analysis up to the horizon, multiplied by the
  probabilities of the static events of ``C``.

Identical ``FT_C`` shapes recur massively across a cutset list (the same
redundant trains appear in thousands of cutsets), so the expensive
chain solve is cached on a structural signature of the model.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.cutset_model import CutsetModel, build_cutset_model
from repro.core.sdft import SdFaultTree
from repro.ctmc.lumping import lump
from repro.ctmc.product import build_product
from repro.ctmc.transient import reach_probability
from repro.errors import AnalysisError
from repro.obs.core import NULL_OBS
from repro.perf.fingerprint import model_signature
from repro.robust import faults

if TYPE_CHECKING:
    from repro.core.classify import ClassificationReport
    from repro.obs.core import Observability
    from repro.perf.cache import SolveCache
    from repro.robust.budget import Budget

__all__ = [
    "McsQuantification",
    "QuantificationCache",
    "bound_record",
    "quantify_cutset",
]

#: Valid ``on_oversize`` modes, validated before any work is done.
_OVERSIZE_MODES = ("raise", "bounds")


@dataclass(frozen=True)
class McsQuantification:
    """Result of quantifying one minimal cutset.

    ``chain_states`` and ``solve_seconds`` are zero for static cutsets
    and for cache hits; ``n_dynamic_in_model``/``n_added_dynamic`` are
    the statistics reported in the paper's Figure 2 and Section VI-A.

    When a cutset's chain exceeded the size budget and interval mode was
    enabled, ``bounded`` is set, ``probability`` holds the conservative
    *upper* bound and ``lower_bound`` the matching lower bound (the
    approximation of the paper's Section VIII).
    """

    cutset: frozenset[str]
    probability: float
    is_dynamic: bool
    n_dynamic_in_cutset: int
    n_dynamic_in_model: int
    n_added_dynamic: int
    chain_states: int
    solve_seconds: float
    cache_hit: bool = False
    trivially_zero: bool = False
    bounded: bool = False
    lower_bound: float | None = None
    #: Degradation-ladder rung that produced the value: ``"exact"`` for
    #: the full transient solve (also static/trivial cutsets),
    #: ``"lumped"``, ``"monte_carlo"``, ``"bound"``, or ``"skipped"``
    #: (budget ran out; value is the conservative static bound).
    rung: str = "exact"
    #: Names of every basic event whose content the value reads (see
    #: :attr:`repro.core.cutset_model.CutsetModel.dependencies`).  The
    #: incremental engine uses this to prove a record untouched by an
    #: edit; empty for skipped records (never reused).
    dependencies: tuple[str, ...] = ()


class QuantificationCache:
    """Memoises chain solves by structural model signature.

    The signature covers everything the reachability probability depends
    on: the dynamic events with their chain *contents*, the static
    guards with probabilities, the gate structure, the trigger edges and
    the horizon.  Chains are compared by content fingerprint
    (:meth:`repro.ctmc.chain.Ctmc.fingerprint`), so equal-but-distinct
    chain objects — models built separately, or chains revived by
    unpickling in another process — hit the cache too.  The same keys
    drive the cross-process dedup of :mod:`repro.perf.dedup`.
    """

    def __init__(self) -> None:
        self._store: dict[tuple, tuple[float, int]] = {}
        self.hits = 0
        self.misses = 0
        #: Optional :class:`repro.perf.cache.SolveCache` backing store.
        #: An in-memory miss consults it before solving; a fresh solve
        #: is written through.  Hits from disk count as *misses* here
        #: (they are first occurrences in this run) but skip the solve.
        self.persistent: "SolveCache | None" = None

    def signature(self, model: SdFaultTree, horizon: float) -> tuple:
        """A hashable key identifying the quantification problem."""
        return model_signature(model, horizon)

    def get(self, key: tuple) -> tuple[float, int] | None:
        """Cached ``(probability, chain size)`` or ``None``."""
        found = self._store.get(key)
        if found is not None:
            self.hits += 1
        return found

    def put(self, key: tuple, probability: float, chain_states: int) -> None:
        """Record a solve."""
        self.misses += 1
        self._store[key] = (probability, chain_states)


def quantify_cutset(
    sdft: SdFaultTree,
    cutset: frozenset[str],
    horizon: float,
    classes: "ClassificationReport | None" = None,
    cache: QuantificationCache | None = None,
    epsilon: float = 1e-12,
    max_chain_states: int = 200_000,
    on_oversize: str = "raise",
    lump_chains: bool = False,
    budget: "Budget | None" = None,
    obs: "Observability | None" = None,
) -> McsQuantification:
    """Compute ``p̃(C)`` for one minimal cutset.

    ``classes`` and ``cache`` are optional shared state for bulk runs
    (see :mod:`repro.core.analyzer`).  ``on_oversize`` decides what
    happens when the cutset's chain would exceed ``max_chain_states``:
    ``"raise"`` propagates the error, ``"bounds"`` falls back to the
    interval approximation of :mod:`repro.core.bounds`.  ``budget`` is
    an optional :class:`repro.robust.budget.Budget` charged for the
    chain states solved and polled for the wall-clock deadline.
    ``obs`` is an optional :class:`repro.obs.core.Observability`
    bundle recording a span (and solver metrics) per actual chain
    solve.
    """
    if on_oversize not in _OVERSIZE_MODES:
        raise ValueError(f"unknown on_oversize mode {on_oversize!r}")
    model = build_cutset_model(sdft, cutset, classes)
    return quantify_model(
        model,
        horizon,
        cache,
        epsilon,
        max_chain_states,
        on_oversize,
        lump_chains,
        budget,
        obs,
    )


def quantify_model(
    model: CutsetModel,
    horizon: float,
    cache: QuantificationCache | None = None,
    epsilon: float = 1e-12,
    max_chain_states: int = 200_000,
    on_oversize: str = "raise",
    lump_chains: bool = False,
    budget: "Budget | None" = None,
    obs: "Observability | None" = None,
) -> McsQuantification:
    """Quantify an already-built cutset model.

    With ``lump_chains`` the product chain is reduced by exact ordinary
    lumping (:mod:`repro.ctmc.lumping`) before the transient solve —
    symmetric redundant components then collapse into counters.  The
    reported ``chain_states`` is the size actually solved.

    When tracing is enabled (``obs``), each *actual* solve — a cache
    miss on a dynamic model — records a ``quantify.solve`` span with
    the cutset, chain size and resulting probability; static cutsets
    and cache hits record nothing (they do no solver work).
    """
    if on_oversize not in _OVERSIZE_MODES:
        raise ValueError(f"unknown on_oversize mode {on_oversize!r}")
    if model.trivially_zero:
        return McsQuantification(
            model.cutset,
            0.0,
            True,
            model.n_dynamic_in_cutset,
            model.n_dynamic_in_model,
            model.n_added_dynamic,
            0,
            0.0,
            trivially_zero=True,
            dependencies=model.dependencies,
        )
    if model.model is None:
        return McsQuantification(
            model.cutset,
            model.static_factor,
            False,
            0,
            0,
            0,
            0,
            0.0,
            dependencies=model.dependencies,
        )

    key = cache.signature(model.model, horizon) if cache is not None else None
    if cache is not None and key is not None:
        found = cache.get(key)
        if found is not None:
            probability, chain_states = found
            return McsQuantification(
                model.cutset,
                probability * model.static_factor,
                True,
                model.n_dynamic_in_cutset,
                model.n_dynamic_in_model,
                model.n_added_dynamic,
                chain_states,
                0.0,
                cache_hit=True,
                dependencies=model.dependencies,
            )

    if cache is not None and key is not None and cache.persistent is not None:
        warm = cache.persistent.get_solve(
            key, epsilon, max_chain_states, lump_chains
        )
        if warm is not None:
            # A prior run already solved this exact model under these
            # exact solver knobs.  Keep the run's accounting identical
            # to a fresh solve: the budget is charged for the states
            # the solve *would* have cost, and the in-memory cache is
            # primed so later members of the group hit it as usual.
            probability, solved_states = warm
            if budget is not None:
                budget.charge_states(solved_states, "quantify")
            cache.put(key, probability, solved_states)
            return McsQuantification(
                model.cutset,
                probability * model.static_factor,
                True,
                model.n_dynamic_in_cutset,
                model.n_dynamic_in_model,
                model.n_added_dynamic,
                solved_states,
                0.0,
                rung="lumped" if lump_chains else "exact",
                dependencies=model.dependencies,
            )

    obs = obs if obs is not None else NULL_OBS
    started = time.perf_counter()
    with obs.tracer.span(
        "quantify.solve", cutset="+".join(sorted(model.cutset))
    ) as span:
        try:
            faults.check("chain_build", cutset=model.cutset)
            product = build_product(model.model, max_states=max_chain_states)
        except AnalysisError:
            if on_oversize != "bounds":
                raise
            # The single fallback mechanism: the same bound rung the
            # degradation ladder ends on (repro.robust.ladder).
            span.set(rung="bound")
            return bound_record(model, horizon, epsilon)
        chain = product.chain
        solved_states = product.n_states
        if lump_chains:
            faults.check("lump", cutset=model.cutset)
            lumped = lump(chain.with_absorbing(chain.failed))
            chain = lumped.chain
            solved_states = chain.n_states
        if budget is not None:
            budget.charge_states(solved_states, "quantify")
        faults.check("transient_solve", cutset=model.cutset)
        dynamic_probability = reach_probability(
            chain, horizon, epsilon=epsilon, budget=budget, metrics=obs.metrics
        )
        dynamic_probability = faults.corrupt(
            "solve_value", dynamic_probability, cutset=model.cutset
        )
        span.set(chain_states=solved_states, probability=dynamic_probability)
    elapsed = time.perf_counter() - started
    if cache is not None and key is not None:
        cache.put(key, dynamic_probability, solved_states)
        if cache.persistent is not None:
            cache.persistent.put_solve(
                key,
                epsilon,
                max_chain_states,
                lump_chains,
                dynamic_probability,
                solved_states,
            )
    return McsQuantification(
        model.cutset,
        dynamic_probability * model.static_factor,
        True,
        model.n_dynamic_in_cutset,
        model.n_dynamic_in_model,
        model.n_added_dynamic,
        solved_states,
        elapsed,
        rung="lumped" if lump_chains else "exact",
        dependencies=model.dependencies,
    )


def bound_record(
    model: CutsetModel, horizon: float, epsilon: float = 1e-12
) -> McsQuantification:
    """Quantify a cutset by the interval bound of :mod:`repro.core.bounds`.

    The one fallback used both by ``on_oversize="bounds"`` and by the
    last rung of the degradation ladder: ``probability`` is the
    conservative upper bound, ``lower_bound`` the matching lower bound,
    and ``bounded`` is set so interval reporting picks it up.
    """
    started = time.perf_counter()
    faults.check("bound", cutset=model.cutset)
    from repro.core.bounds import bound_cutset

    interval = bound_cutset(model, horizon, epsilon)
    return McsQuantification(
        model.cutset,
        interval.upper,
        True,
        model.n_dynamic_in_cutset,
        model.n_dynamic_in_model,
        model.n_added_dynamic,
        0,
        time.perf_counter() - started,
        bounded=True,
        lower_bound=interval.lower,
        rung="bound",
        dependencies=model.dependencies,
    )
