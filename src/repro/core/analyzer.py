"""End-to-end analysis of SD fault trees (the paper's Section V pipeline).

:func:`analyze` chains the three phases:

1. **Translate** — build the static tree ``FT̄`` with worst-case
   probabilities for dynamic events (:mod:`repro.core.to_static`).
2. **Generate** — run MOCUS with the probabilistic cutoff on ``FT̄``;
   its minimal cutsets are exactly those of the SD tree, and the cutoff
   is conservative thanks to the worst-case probabilities.
3. **Quantify** — classify every triggering gate once, then build and
   solve the small ``FT_C`` chain of each dynamic cutset, caching
   repeated model shapes; sum the ``p̃(C)`` above the cutoff
   (rare-event approximation).

For comparison baselines, :func:`analyze_exact` solves the full product
chain (the method that does not scale) and :func:`analyze_static`
evaluates the tree with all timing ignored.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.core.classify import classification_report
from repro.core.quantify import QuantificationCache, quantify_cutset
from repro.core.results import AnalysisResult, Timings
from repro.core.sdft import SdFaultTree
from repro.core.to_static import to_static
from repro.ft.mocus import MocusOptions, mocus
from repro.ft.probability import rare_event_probability

__all__ = [
    "AnalysisOptions",
    "analyze",
    "analyze_curve",
    "analyze_exact",
    "analyze_static",
]


@dataclass(frozen=True)
class AnalysisOptions:
    """Knobs of the end-to-end analysis.

    ``horizon`` is the mission time ``t`` in hours; ``cutoff`` is the
    probabilistic cutoff ``c*`` applied both during MOCUS and to the
    final quantified list; ``epsilon`` bounds the transient solver's
    truncation error; ``max_chain_states`` guards against cutset chains
    that explode (a modelling smell the user should hear about).
    ``on_oversize`` chooses between failing on an oversized chain
    (``"raise"``) and the interval approximation of the paper's
    Section VIII (``"bounds"`` — the affected cutsets contribute their
    conservative upper bound and the result reports the interval).
    ``lump_chains`` reduces every per-cutset chain by exact ordinary
    lumping before solving (symmetric redundancy collapses).

    ``mocus_probability_overrides`` replaces the probabilities of the
    named events in the static translation before MOCUS runs — the
    paper's "static cutoff" (Section VI: "We use the static cutoff in
    all experiments"): the cutset list is generated against the original
    static probabilities so it stays identical across dynamic
    parameterisations (e.g. phase counts), while the quantification
    still uses the dynamic chains.
    """

    horizon: float = 24.0
    cutoff: float = 1e-15
    epsilon: float = 1e-12
    max_chain_states: int = 200_000
    max_partials: int = 20_000_000
    on_oversize: str = "raise"
    lump_chains: bool = False
    mocus_probability_overrides: "dict[str, float] | None" = None


def analyze(sdft: SdFaultTree, options: AnalysisOptions | None = None) -> AnalysisResult:
    """Run the full SD analysis and return an :class:`AnalysisResult`."""
    opts = options or AnalysisOptions()

    started = time.perf_counter()
    translation = to_static(sdft, opts.horizon)
    mocus_tree = translation.tree
    if opts.mocus_probability_overrides:
        mocus_tree = mocus_tree.with_probabilities(
            opts.mocus_probability_overrides
        )
    translation_seconds = time.perf_counter() - started

    started = time.perf_counter()
    mocus_result = mocus(
        mocus_tree,
        MocusOptions(cutoff=opts.cutoff, max_partials=opts.max_partials),
    )
    mcs_seconds = time.perf_counter() - started

    started = time.perf_counter()
    classes = classification_report(sdft).by_gate
    cache = QuantificationCache()
    records = []
    total = 0.0
    for cutset in mocus_result.cutsets:
        record = quantify_cutset(
            sdft,
            cutset,
            opts.horizon,
            classes=classes,
            cache=cache,
            epsilon=opts.epsilon,
            max_chain_states=opts.max_chain_states,
            on_oversize=opts.on_oversize,
            lump_chains=opts.lump_chains,
        )
        records.append(record)
        if record.probability > opts.cutoff:
            total += record.probability
    quantification_seconds = time.perf_counter() - started

    return AnalysisResult(
        failure_probability=total,
        static_bound=mocus_result.cutsets.rare_event(),
        horizon=opts.horizon,
        cutoff=opts.cutoff,
        records=tuple(records),
        timings=Timings(translation_seconds, mcs_seconds, quantification_seconds),
        classification=classification_report(sdft),
        cache_hits=cache.hits,
        cache_misses=cache.misses,
    )


def analyze_curve(
    sdft: SdFaultTree,
    horizons: "list[float] | tuple[float, ...]",
    options: AnalysisOptions | None = None,
) -> dict[float, float]:
    """Failure probability as a function of the mission time.

    Evaluates ``Pr[Reach^{<=t}(F)]`` for every horizon in ``horizons``
    over a *single* cutset list: the list is generated once at the
    largest horizon, where the worst-case probabilities — monotone in
    ``t`` — are largest, so no cutset relevant at any requested horizon
    is missed.  Per-horizon quantification reuses the shared chain-solve
    cache, which makes a 10-point curve cost far less than 10 analyses.
    """
    if not horizons:
        return {}
    opts = options or AnalysisOptions()
    widest = max(horizons)
    if min(horizons) < 0.0:
        raise ValueError(f"horizons must be non-negative, got {sorted(horizons)}")

    translation = to_static(sdft, widest)
    mocus_tree = translation.tree
    if opts.mocus_probability_overrides:
        mocus_tree = mocus_tree.with_probabilities(opts.mocus_probability_overrides)
    cutsets = mocus(
        mocus_tree, MocusOptions(cutoff=opts.cutoff, max_partials=opts.max_partials)
    ).cutsets

    classes = classification_report(sdft).by_gate
    cache = QuantificationCache()
    curve: dict[float, float] = {}
    for horizon in sorted(set(horizons)):
        total = 0.0
        for cutset in cutsets:
            record = quantify_cutset(
                sdft,
                cutset,
                horizon,
                classes=classes,
                cache=cache,
                epsilon=opts.epsilon,
                max_chain_states=opts.max_chain_states,
                on_oversize=opts.on_oversize,
                lump_chains=opts.lump_chains,
            )
            if record.probability > opts.cutoff:
                total += record.probability
        curve[horizon] = total
    return curve


def analyze_exact(
    sdft: SdFaultTree,
    horizon: float,
    max_states: int = 200_000,
    epsilon: float = 1e-12,
) -> float:
    """Exact ``Pr[Reach^{<=t}(F)]`` via the full product chain.

    Exponential in the number of basic events — the baseline the paper's
    decomposition replaces.  Use only on small trees (or let
    ``max_states`` raise).
    """
    from repro.ctmc.product import build_product
    from repro.ctmc.transient import reach_probability

    product = build_product(sdft, max_states=max_states)
    return reach_probability(product.chain, horizon, epsilon=epsilon)


def analyze_static(
    sdft: SdFaultTree,
    options: AnalysisOptions | None = None,
) -> float:
    """The "no timing" baseline: analyse the tree as purely static.

    Every dynamic event is frozen at its worst-case (triggered at time
    zero, never untriggered) failure probability over the horizon and
    triggers become AND gates — this mirrors what a static tool computes
    from a conventional model where every component runs from time zero
    and timing interdependencies are ignored.
    """
    opts = options or AnalysisOptions()
    translation = to_static(sdft, opts.horizon)
    result = rare_event_probability(
        translation.tree, MocusOptions(cutoff=opts.cutoff, max_partials=opts.max_partials)
    )
    return result.value
