"""End-to-end analysis of SD fault trees (the paper's Section V pipeline).

:func:`analyze` chains the three phases:

1. **Translate** — build the static tree ``FT̄`` with worst-case
   probabilities for dynamic events (:mod:`repro.core.to_static`).
2. **Generate** — run MOCUS with the probabilistic cutoff on ``FT̄``;
   its minimal cutsets are exactly those of the SD tree, and the cutoff
   is conservative thanks to the worst-case probabilities.
3. **Quantify** — classify every triggering gate once, then build and
   solve the small ``FT_C`` chain of each dynamic cutset, caching
   repeated model shapes; sum the ``p̃(C)`` above the cutoff
   (rare-event approximation).

For comparison baselines, :func:`analyze_exact` solves the full product
chain (the method that does not scale) and :func:`analyze_static`
evaluates the tree with all timing ignored.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.core.classify import classification_report
from repro.core.quantify import (
    McsQuantification,
    QuantificationCache,
    quantify_cutset,
)
from repro.core.results import AnalysisResult, Timings
from repro.core.sdft import SdFaultTree
from repro.core.to_static import to_static
from repro.errors import AnalysisError, BudgetExceededError, NumericalError
from repro.ft.cutsets import CutSetList
from repro.ft.mocus import MocusOptions, MocusResult, mocus
from repro.ft.probability import rare_event_probability
from repro.robust.budget import Budget
from repro.robust.health import HealthLog

__all__ = [
    "AnalysisOptions",
    "analyze",
    "analyze_curve",
    "analyze_exact",
    "analyze_static",
]


@dataclass(frozen=True)
class AnalysisOptions:
    """Knobs of the end-to-end analysis.

    ``horizon`` is the mission time ``t`` in hours; ``cutoff`` is the
    probabilistic cutoff ``c*`` applied both during MOCUS and to the
    final quantified list; ``epsilon`` bounds the transient solver's
    truncation error; ``max_chain_states`` guards against cutset chains
    that explode (a modelling smell the user should hear about).
    ``on_oversize`` chooses between failing on an oversized chain
    (``"raise"``) and the interval approximation of the paper's
    Section VIII (``"bounds"`` — the affected cutsets contribute their
    conservative upper bound and the result reports the interval).
    ``lump_chains`` reduces every per-cutset chain by exact ordinary
    lumping before solving (symmetric redundancy collapses).

    ``mocus_probability_overrides`` replaces the probabilities of the
    named events in the static translation before MOCUS runs — the
    paper's "static cutoff" (Section VI: "We use the static cutoff in
    all experiments"): the cutset list is generated against the original
    static probabilities so it stays identical across dynamic
    parameterisations (e.g. phase counts), while the quantification
    still uses the dynamic chains.

    Robustness knobs (:mod:`repro.robust`):

    * ``fault_isolation`` — a failure quantifying one cutset no longer
      aborts the run; the degradation ladder
      (:mod:`repro.robust.ladder`) retries that cutset down
      exact → lumped → Monte-Carlo → conservative bound, widening the
      result into an interval and recording every descent in the
      run-health report.
    * ``wall_seconds`` / ``max_total_states`` / ``budget_cutsets`` — a
      cooperative :class:`~repro.robust.budget.Budget`; running out
      yields a *partial* result whose interval is widened by a
      conservative bound on the unfinished work, never a crash.
    * ``checkpoint_path`` — snapshot MOCUS frontier state and quantified
      records to this file every ``checkpoint_interval_seconds``;
      ``resume=True`` restarts a killed run from the snapshot (a
      fingerprint mismatch raises
      :class:`~repro.errors.CheckpointError`).
    * ``monte_carlo_runs`` / ``monte_carlo_seed`` control the ladder's
      simulation rung (seeded deterministically per cutset).
    """

    horizon: float = 24.0
    cutoff: float = 1e-15
    epsilon: float = 1e-12
    max_chain_states: int = 200_000
    max_partials: int = 20_000_000
    on_oversize: str = "raise"
    lump_chains: bool = False
    mocus_probability_overrides: "dict[str, float] | None" = None
    fault_isolation: bool = False
    wall_seconds: float | None = None
    max_total_states: int | None = None
    budget_cutsets: int | None = None
    monte_carlo_runs: int = 4_000
    monte_carlo_seed: int = 0
    checkpoint_path: str | None = None
    checkpoint_interval_seconds: float = 30.0
    resume: bool = False


def analyze(sdft: SdFaultTree, options: AnalysisOptions | None = None) -> AnalysisResult:
    """Run the full SD analysis and return an :class:`AnalysisResult`.

    With the robustness options of :class:`AnalysisOptions` the pipeline
    survives per-cutset solver failures (degradation ladder), resource
    exhaustion (cooperative budgets → partial results with conservative
    remainder bounds) and process kills (checkpoint/resume); everything
    that deviated from the clean path is enumerated in the result's
    :attr:`~repro.core.results.AnalysisResult.health` report.
    """
    opts = options or AnalysisOptions()
    budget = _make_budget(opts)
    health = HealthLog()
    manager, resumed = _open_checkpoint(sdft, opts, health)

    started = time.perf_counter()
    translation = to_static(sdft, opts.horizon)
    mocus_tree = translation.tree
    if opts.mocus_probability_overrides:
        mocus_tree = mocus_tree.with_probabilities(
            opts.mocus_probability_overrides
        )
    translation_seconds = time.perf_counter() - started

    started = time.perf_counter()
    mocus_result, restored_records = _generate_cutsets(
        mocus_tree, opts, budget, health, manager, resumed
    )
    if mocus_result.truncated:
        health.budget(
            "mocus",
            f"cutset generation truncated after "
            f"{len(mocus_result.cutsets)} cutsets; un-enumerated mass "
            f"bounded by {mocus_result.remainder_bound:.3e}",
        )
    mcs_seconds = time.perf_counter() - started

    started = time.perf_counter()
    records, cache = _quantify_cutsets(
        sdft,
        translation.tree,
        mocus_result,
        opts,
        budget,
        health,
        manager,
        restored_records,
    )
    total = sum(r.probability for r in records if r.probability > opts.cutoff)
    quantification_seconds = time.perf_counter() - started

    if manager is not None:
        manager.clear()

    return AnalysisResult(
        failure_probability=total,
        static_bound=mocus_result.cutsets.rare_event(),
        horizon=opts.horizon,
        cutoff=opts.cutoff,
        records=tuple(records),
        timings=Timings(translation_seconds, mcs_seconds, quantification_seconds),
        classification=classification_report(sdft),
        cache_hits=cache.hits,
        cache_misses=cache.misses,
        health=health.freeze(),
        mcs_truncated=mocus_result.truncated,
        mcs_remainder_bound=mocus_result.remainder_bound,
    )


# ----------------------------------------------------------------------
# Resilient-pipeline helpers
# ----------------------------------------------------------------------


def _make_budget(opts: AnalysisOptions) -> "Budget | None":
    """A cooperative budget, or ``None`` when every axis is unlimited."""
    if (
        opts.wall_seconds is None
        and opts.max_total_states is None
        and opts.budget_cutsets is None
    ):
        return None
    return Budget(
        wall_seconds=opts.wall_seconds,
        max_total_states=opts.max_total_states,
        max_cutsets=opts.budget_cutsets,
    )


def _open_checkpoint(sdft: SdFaultTree, opts: AnalysisOptions, health: HealthLog):
    """The run's checkpoint manager and, when resuming, its snapshot."""
    if not opts.checkpoint_path:
        return None, None
    from repro.robust.checkpoint import CheckpointManager, model_fingerprint

    manager = CheckpointManager(
        opts.checkpoint_path,
        model_fingerprint(sdft, opts.horizon, opts.cutoff),
        opts.checkpoint_interval_seconds,
    )
    payload = None
    if opts.resume:
        payload = manager.load()
        if payload is not None:
            health.info(
                "checkpoint",
                f"resumed from {opts.checkpoint_path} "
                f"(phase {payload['phase']!r})",
            )
    return manager, payload


def _generate_cutsets(
    mocus_tree, opts: AnalysisOptions, budget, health: HealthLog, manager, resumed
):
    """Run (or restore) cutset generation, surviving budget exhaustion.

    Returns the MOCUS result plus the quantification records restored
    from a quantify-phase checkpoint (empty when not resuming).
    """
    if resumed is not None and resumed["phase"] == "quantify":
        from repro.robust.checkpoint import record_from_dict

        state = resumed["state"]
        probabilities = {
            name: event.probability for name, event in mocus_tree.events.items()
        }
        cutsets = CutSetList.from_cutsets(
            [frozenset(names) for names in state["cutsets"]],
            probabilities,
            minimal=True,
        )
        restored = {
            record.cutset: record
            for record in map(record_from_dict, state["records"])
        }
        result = MocusResult(
            cutsets,
            truncated=state.get("mcs_truncated", False),
            remainder_bound=state.get("mcs_remainder_bound", 0.0),
        )
        return result, restored

    mocus_resume = None
    if resumed is not None and resumed["phase"] == "mocus":
        mocus_resume = resumed["state"]["mocus"]
    on_progress = None
    if manager is not None:
        on_progress = lambda build: manager.maybe_save(  # noqa: E731
            "mocus", lambda: {"mocus": build()}
        )
    try:
        result = mocus(
            mocus_tree,
            MocusOptions(cutoff=opts.cutoff, max_partials=opts.max_partials),
            budget=budget,
            on_progress=on_progress,
            resume=mocus_resume,
        )
    except BudgetExceededError as error:
        if error.partial is None:
            raise
        result = error.partial.result
        # Persist the frontier: a resumed run with a fresh budget can
        # continue the search instead of redoing it.
        if manager is not None:
            manager.save("mocus", {"mocus": error.partial.frontier})
    return result, {}


def _quantify_cutsets(
    sdft: SdFaultTree,
    translation_tree,
    mocus_result: MocusResult,
    opts: AnalysisOptions,
    budget,
    health: HealthLog,
    manager,
    restored: dict,
):
    """Quantify every cutset with isolation, budgets and checkpoints."""
    classes = classification_report(sdft).by_gate
    cache = QuantificationCache()
    records: list[McsQuantification] = []
    cutset_list = list(mocus_result.cutsets)

    def state() -> dict:
        from repro.robust.checkpoint import record_to_dict

        return {
            "cutsets": [sorted(c) for c in cutset_list],
            "records": [record_to_dict(r) for r in records],
            "mcs_truncated": mocus_result.truncated,
            "mcs_remainder_bound": mocus_result.remainder_bound,
        }

    if manager is not None:
        # Phase transition: from here on the cutset list is fixed.
        manager.save("quantify", state())

    out_of_budget = False
    for cutset in cutset_list:
        reused = restored.get(cutset)
        if reused is not None:
            records.append(reused)
            continue
        if not out_of_budget and budget is not None and budget.expired():
            health.budget(
                "quantify",
                "wall-clock budget exhausted; remaining cutsets carry "
                "their conservative static worst-case bound",
            )
            out_of_budget = True
        if out_of_budget:
            records.append(
                _skipped_record(
                    sdft, cutset, _worst_case_probability(translation_tree, cutset)
                )
            )
            continue
        try:
            record = _quantify_one(
                sdft, cutset, opts, classes, cache, budget, health
            )
        except BudgetExceededError as error:
            health.budget("quantify", str(error), cutset=cutset)
            out_of_budget = True
            records.append(
                _skipped_record(
                    sdft, cutset, _worst_case_probability(translation_tree, cutset)
                )
            )
            continue
        except (NumericalError, AnalysisError) as error:
            if not opts.fault_isolation:
                raise
            health.degradation(
                "quantify",
                f"every ladder rung failed ({error}); static worst-case "
                f"bound substituted",
                cutset=cutset,
                rung="skipped",
            )
            records.append(
                _skipped_record(
                    sdft, cutset, _worst_case_probability(translation_tree, cutset)
                )
            )
            continue
        records.append(record)
        if manager is not None:
            manager.maybe_save("quantify", state)
    return records, cache


def _quantify_one(
    sdft: SdFaultTree,
    cutset: frozenset,
    opts: AnalysisOptions,
    classes,
    cache: QuantificationCache,
    budget,
    health: HealthLog,
) -> McsQuantification:
    """Quantify one cutset, through the ladder when isolation is on."""
    if not opts.fault_isolation:
        record = quantify_cutset(
            sdft,
            cutset,
            opts.horizon,
            classes=classes,
            cache=cache,
            epsilon=opts.epsilon,
            max_chain_states=opts.max_chain_states,
            on_oversize=opts.on_oversize,
            lump_chains=opts.lump_chains,
            budget=budget,
        )
        if record.bounded:
            health.degradation(
                "quantify",
                "oversized chain bounded by the interval approximation",
                cutset=cutset,
                rung="bound",
            )
        return record

    from repro.robust.ladder import quantify_with_ladder

    outcome = quantify_with_ladder(
        sdft,
        cutset,
        opts.horizon,
        classes=classes,
        cache=cache,
        epsilon=opts.epsilon,
        max_chain_states=opts.max_chain_states,
        lump_chains=opts.lump_chains,
        budget=budget,
        monte_carlo_runs=opts.monte_carlo_runs,
        monte_carlo_seed=opts.monte_carlo_seed,
    )
    for attempt in outcome.attempts:
        health.retry(
            "quantify",
            f"rung failed: {attempt.error}",
            cutset=cutset,
            rung=attempt.rung,
        )
    if outcome.degraded:
        health.degradation(
            "quantify",
            "fallback value substituted",
            cutset=cutset,
            rung=outcome.rung,
        )
    return outcome.record


def _worst_case_probability(translation_tree, cutset: frozenset) -> float:
    """The static worst-case ``p̄(C)`` — inequality (1)'s upper bound.

    Computed from the *translation* tree (never the MOCUS override
    probabilities), so it soundly dominates ``p̃(C)``.
    """
    probability = 1.0
    for name in cutset:
        probability *= translation_tree.events[name].probability
    return probability


def _skipped_record(
    sdft: SdFaultTree, cutset: frozenset, worst_case: float
) -> McsQuantification:
    """A conservative placeholder for a cutset the budget never reached."""
    n_dynamic = sum(1 for name in cutset if sdft.is_dynamic(name))
    return McsQuantification(
        cutset,
        worst_case,
        n_dynamic > 0,
        n_dynamic,
        n_dynamic,
        0,
        0,
        0.0,
        bounded=True,
        lower_bound=0.0,
        rung="skipped",
    )


def analyze_curve(
    sdft: SdFaultTree,
    horizons: "list[float] | tuple[float, ...]",
    options: AnalysisOptions | None = None,
) -> dict[float, float]:
    """Failure probability as a function of the mission time.

    Evaluates ``Pr[Reach^{<=t}(F)]`` for every horizon in ``horizons``
    over a *single* cutset list: the list is generated once at the
    largest horizon, where the worst-case probabilities — monotone in
    ``t`` — are largest, so no cutset relevant at any requested horizon
    is missed.  Per-horizon quantification reuses the shared chain-solve
    cache, which makes a 10-point curve cost far less than 10 analyses.
    """
    if not horizons:
        return {}
    opts = options or AnalysisOptions()
    widest = max(horizons)
    if min(horizons) < 0.0:
        raise ValueError(f"horizons must be non-negative, got {sorted(horizons)}")

    translation = to_static(sdft, widest)
    mocus_tree = translation.tree
    if opts.mocus_probability_overrides:
        mocus_tree = mocus_tree.with_probabilities(opts.mocus_probability_overrides)
    cutsets = mocus(
        mocus_tree, MocusOptions(cutoff=opts.cutoff, max_partials=opts.max_partials)
    ).cutsets

    classes = classification_report(sdft).by_gate
    cache = QuantificationCache()
    curve: dict[float, float] = {}
    for horizon in sorted(set(horizons)):
        total = 0.0
        for cutset in cutsets:
            record = quantify_cutset(
                sdft,
                cutset,
                horizon,
                classes=classes,
                cache=cache,
                epsilon=opts.epsilon,
                max_chain_states=opts.max_chain_states,
                on_oversize=opts.on_oversize,
                lump_chains=opts.lump_chains,
            )
            if record.probability > opts.cutoff:
                total += record.probability
        curve[horizon] = total
    return curve


def analyze_exact(
    sdft: SdFaultTree,
    horizon: float,
    max_states: int = 200_000,
    epsilon: float = 1e-12,
) -> float:
    """Exact ``Pr[Reach^{<=t}(F)]`` via the full product chain.

    Exponential in the number of basic events — the baseline the paper's
    decomposition replaces.  Use only on small trees (or let
    ``max_states`` raise).
    """
    from repro.ctmc.product import build_product
    from repro.ctmc.transient import reach_probability

    product = build_product(sdft, max_states=max_states)
    return reach_probability(product.chain, horizon, epsilon=epsilon)


def analyze_static(
    sdft: SdFaultTree,
    options: AnalysisOptions | None = None,
) -> float:
    """The "no timing" baseline: analyse the tree as purely static.

    Every dynamic event is frozen at its worst-case (triggered at time
    zero, never untriggered) failure probability over the horizon and
    triggers become AND gates — this mirrors what a static tool computes
    from a conventional model where every component runs from time zero
    and timing interdependencies are ignored.
    """
    opts = options or AnalysisOptions()
    translation = to_static(sdft, opts.horizon)
    result = rare_event_probability(
        translation.tree, MocusOptions(cutoff=opts.cutoff, max_partials=opts.max_partials)
    )
    return result.value
