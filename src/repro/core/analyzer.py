"""End-to-end analysis of SD fault trees (the paper's Section V pipeline).

:func:`analyze` chains the three phases:

1. **Translate** — build the static tree ``FT̄`` with worst-case
   probabilities for dynamic events (:mod:`repro.core.to_static`).
2. **Generate** — run MOCUS with the probabilistic cutoff on ``FT̄``;
   its minimal cutsets are exactly those of the SD tree, and the cutoff
   is conservative thanks to the worst-case probabilities.
3. **Quantify** — classify every triggering gate once, then build and
   solve the small ``FT_C`` chain of each dynamic cutset, caching
   repeated model shapes; sum the ``p̃(C)`` above the cutoff
   (rare-event approximation).

For comparison baselines, :func:`analyze_exact` solves the full product
chain (the method that does not scale) and :func:`analyze_static`
evaluates the tree with all timing ignored.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.classify import classification_report
from repro.core.cutset_model import build_cutset_model
from repro.core.quantify import (
    McsQuantification,
    QuantificationCache,
    quantify_cutset,
    quantify_model,
)
from repro.core.results import AnalysisResult, PerfStats, Timings, served_interval
from repro.core.sdft import SdFaultTree
from repro.core.to_static import to_static
from repro.errors import (
    AnalysisError,
    BddBudgetExceeded,
    BudgetExceededError,
    InvariantViolation,
    NumericalError,
)
from repro.ft.cutsets import CutSetList
from repro.ft.mocus import MocusOptions, MocusResult, mocus
from repro.ft.probability import rare_event_probability
from repro.obs.core import NULL_OBS, Observability
from repro.robust.budget import Budget
from repro.robust.health import HealthLog
from repro.robust.verify import Verifier, resolve_mode

if TYPE_CHECKING:
    from collections.abc import Callable

    from repro.core.classify import ClassificationReport
    from repro.core.cutset_model import CutsetModel
    from repro.ft.tree import FaultTree
    from repro.lint.engine import LintReport
    from repro.perf.cache import SolveCache
    from repro.perf.pool import SolveResult, SolverFarm
    from repro.robust.checkpoint import CheckpointManager

__all__ = [
    "AnalysisOptions",
    "AnalysisReuse",
    "analyze",
    "analyze_curve",
    "analyze_exact",
    "analyze_static",
]


@dataclass(frozen=True)
class AnalysisOptions:
    """Knobs of the end-to-end analysis.

    ``horizon`` is the mission time ``t`` in hours; ``cutoff`` is the
    probabilistic cutoff ``c*`` applied both during MOCUS and to the
    final quantified list; ``epsilon`` bounds the transient solver's
    truncation error; ``max_chain_states`` guards against cutset chains
    that explode (a modelling smell the user should hear about).
    ``on_oversize`` chooses between failing on an oversized chain
    (``"raise"``) and the interval approximation of the paper's
    Section VIII (``"bounds"`` — the affected cutsets contribute their
    conservative upper bound and the result reports the interval).
    ``lump_chains`` reduces every per-cutset chain by exact ordinary
    lumping before solving (symmetric redundancy collapses).

    Static-engine selection (:mod:`repro.bdd`):

    * ``static_engine`` — how a *static* (trigger-free, no dynamic
      events) model's top probability is served.  ``"auto"`` (default)
      and ``"bdd"`` quantify exactly by compiling the static tree into
      a BDD (module-wise, with automatic ordering selection), falling
      back to cutset aggregation when the node budget trips; ``"mcs"``
      keeps the classical cutset path.  Dynamic models always use the
      cutset path.  The result's ``method`` field labels what was
      served: ``"bdd-exact"``, ``"mcs-rare-event"``, or
      ``"mcs-min-cut-ub"`` (the sound substitute when the rare-event
      sum overshoots 1.0).  The cutset records are produced either way
      — importance measures and per-cutset diagnostics do not change.
    * ``bdd_node_budget`` — node-table cap per BDD compilation scope; a
      compilation that would exceed it is abandoned cleanly
      (:class:`~repro.errors.BddBudgetExceeded`) and the run falls back
      to cutset quantification with a health note.

    ``mocus_probability_overrides`` replaces the probabilities of the
    named events in the static translation before MOCUS runs — the
    paper's "static cutoff" (Section VI: "We use the static cutoff in
    all experiments"): the cutset list is generated against the original
    static probabilities so it stays identical across dynamic
    parameterisations (e.g. phase counts), while the quantification
    still uses the dynamic chains.

    Robustness knobs (:mod:`repro.robust`):

    * ``fault_isolation`` — a failure quantifying one cutset no longer
      aborts the run; the degradation ladder
      (:mod:`repro.robust.ladder`) retries that cutset down
      exact → lumped → Monte-Carlo → conservative bound, widening the
      result into an interval and recording every descent in the
      run-health report.
    * ``wall_seconds`` / ``max_total_states`` / ``budget_cutsets`` — a
      cooperative :class:`~repro.robust.budget.Budget`; running out
      yields a *partial* result whose interval is widened by a
      conservative bound on the unfinished work, never a crash.
    * ``checkpoint_path`` — snapshot MOCUS frontier state and quantified
      records to this file every ``checkpoint_interval_seconds``;
      ``resume=True`` restarts a killed run from the snapshot (a
      fingerprint mismatch raises
      :class:`~repro.errors.CheckpointError`).
    * ``monte_carlo_runs`` / ``monte_carlo_seed`` control the ladder's
      simulation rung (seeded deterministically per cutset).
    * ``mc_target_rel_error`` / ``mc_engine`` tune the simulation
      rung's rare-event controller (:mod:`repro.ctmc.rare`):
      ``mc_engine`` is ``"auto"`` (a crude pilot batch picks between
      crude sampling, failure-biased importance sampling and
      importance splitting), ``"crude"``, ``"is"`` or ``"splitting"``;
      the controller iterates until the 95 % relative half-width drops
      below ``mc_target_rel_error``, ``monte_carlo_runs`` trajectories
      are spent, or the budget expires — the health report then names
      the engine used and the precision actually achieved.
    * ``verify`` — runtime self-verification (:mod:`repro.robust.verify`):
      ``"off"`` (default) does nothing; ``"cheap"`` asserts the invariant
      catalogue (probabilities in range, intervals ordered, per-cutset
      worst-case dominance) at every stage boundary; ``"full"``
      additionally runs the differential cross-checks of
      :mod:`repro.robust.crosscheck` (seeded re-quantification, the BDD
      oracle on small trees, ladder-rung bracketing).  A per-cutset
      violation degrades that cutset conservatively under
      ``fault_isolation`` (with a health event) and raises
      :class:`~repro.errors.InvariantViolation` otherwise; violations at
      stage boundaries always raise.  Verification never changes a
      clean run's records.
    * ``pool_task_timeout_seconds`` — per-task wall deadline on the
      process-pool farm (``jobs > 1``): a task running longer is
      terminated, its cutsets are recovered in the parent through the
      degradation path, and the event is recorded in the health report.

    Parallelism (:mod:`repro.perf`):

    * ``jobs`` — worker processes for the quantification phase.  ``1``
      (the default) keeps the serial in-process loop; ``"auto"`` uses
      one worker per available CPU.  With more than one job the dynamic
      cutsets are grouped by structural model signature, each *unique*
      model is solved exactly once on a process pool
      (largest-estimated-chain first), and the results are folded back
      in deterministic cutset order — the analysis values are identical
      to a serial run, only wall-clock changes.  A task that fails in a
      worker is recovered by re-running its cutsets in the parent
      through the usual degradation path.

    Persistent caching (:mod:`repro.perf.cache`):

    * ``cache_dir`` — directory of the on-disk solve cache.  ``None``
      (the library default) disables persistence entirely; the CLI
      defaults it to ``$REPRO_CACHE_DIR`` or ``~/.cache/repro``
      (``--no-cache`` opts out).  Three layers, all keyed by content
      fingerprints plus the value-affecting options: per-unique-model
      chain solves, the MOCUS cutset list, and the full record set of
      a clean run — so re-analysing an unchanged model is near-free
      and an unchanged submodel still reuses its solves.  Corrupted or
      version-mismatched entries degrade to cache misses, never
      crashes; cached values flow through the same verification guards
      as fresh ones; nothing is written while fault injection is armed
      or when the run was budgeted, checkpointed, resumed, truncated
      or degraded.  Hit/miss counts ride on the health report and the
      ``cache.*`` metrics.

    Pre-flight linting (:mod:`repro.lint`):

    * ``lint`` — run the static model linter before the pipeline.  A
      model with error-level diagnostics (e.g. a top gate that can
      never fail, or a cutoff guaranteed to empty the cutset list) is
      rejected with :class:`~repro.errors.LintError` *before* any
      translation, MOCUS or quantification work happens; warnings and
      infos ride on :attr:`~repro.core.results.AnalysisResult.lint`,
      appear in the run summary, and are noted in the run-health
      report.  The lint pass gets its own ``lint`` span in the trace.

    Semantic simplification (:mod:`repro.sem`):

    * ``simplify`` — run the BDD-verified rewrite engine over the model
      before translation and analyse the smaller equivalent model.
      Every applied rewrite round is proven equivalent (top scope and
      all trigger-gate scopes) within ``bdd_node_budget`` BDD nodes;
      rounds the proof cannot afford are reverted, so the option can
      shrink the work but never change the answer.  The stage gets its
      own ``simplify`` span, ``sem.*`` metrics, and a health note with
      the gate/event reduction.

    Observability (:mod:`repro.obs`):

    * ``trace_path`` — write a JSONL trace of the run (phase and
      per-solve spans, pool-task spans shipped back from workers, and
      the metric snapshot) to this file; summarise it with
      ``sdft trace FILE``.
    * ``collect_metrics`` — collect the pipeline metrics without
      writing a trace file; the snapshot rides on
      :attr:`~repro.core.results.AnalysisResult.metrics` and its
      highlights are rendered by the run summary.

    Either knob enables collection; both off (the default) costs
    nearly nothing (see ``benchmarks/bench_obs_overhead.py``).  The
    collected quantities never influence analysis values, and the
    analysis-derived metrics are identical across ``jobs`` settings.
    """

    horizon: float = 24.0
    cutoff: float = 1e-15
    epsilon: float = 1e-12
    lint: bool = False
    simplify: bool = False
    max_chain_states: int = 200_000
    max_partials: int = 20_000_000
    on_oversize: str = "raise"
    lump_chains: bool = False
    mocus_probability_overrides: "dict[str, float] | None" = None
    fault_isolation: bool = False
    wall_seconds: float | None = None
    max_total_states: int | None = None
    budget_cutsets: int | None = None
    monte_carlo_runs: int = 4_000
    monte_carlo_seed: int = 0
    mc_target_rel_error: float = 0.10
    mc_engine: str = "auto"
    checkpoint_path: str | None = None
    checkpoint_interval_seconds: float = 30.0
    resume: bool = False
    verify: str = "off"
    jobs: "int | str" = 1
    pool_task_timeout_seconds: float | None = None
    trace_path: str | None = None
    collect_metrics: bool = False
    cache_dir: str | None = None
    static_engine: str = "auto"
    bdd_node_budget: int = 200_000


#: Valid ``AnalysisOptions.static_engine`` values.
_STATIC_ENGINES = ("auto", "bdd", "mcs")


@dataclass
class AnalysisReuse:
    """Work carried between runs of the same pipeline (the session hook).

    :class:`repro.service.session.AnalysisSession` passes one of these
    into :func:`analyze` to (a) inject cutsets it already proved
    equivalent to a fresh MOCUS search and a solve store from the
    previous run, and (b) capture this run's artifacts for the *next*
    incremental step.  ``analyze(sdft)`` without a reuse hook is the
    unchanged one-shot pipeline.

    Injected inputs
    ---------------
    ``translation`` — a pre-computed
    :class:`~repro.core.to_static.StaticTranslation` of *this* model at
    *this* horizon (the session computes it to diff trees; recomputing
    it would redo every worst-case chain solve).
    ``cutsets`` — a pre-computed :class:`MocusResult` substituted for
    the MOCUS stage (the caller vouches it is element-for-element what
    the search would return; see :mod:`repro.service.incremental`).
    ``solves`` — ``signature -> (probability, chain_states)`` entries
    priming the in-memory :class:`QuantificationCache`, so only cutsets
    whose ``FT_C`` content fingerprint changed are re-solved.  Both the
    serial loop and the process-pool path consult the primed store
    before solving.
    ``records`` — ``cutset -> McsQuantification`` records the caller
    proved untouched by the edit (unchanged gate/trigger skeleton, no
    dirty event among the record's ``dependencies``).  They are served
    through the same checked-restore path checkpoint resume uses —
    skipping even the ``FT_C`` model build — and re-validated against
    this run's invariants.

    Captured outputs (filled by :func:`analyze`)
    --------------------------------------------
    ``out_translation`` / ``out_mocus`` / ``out_solves`` — the
    translation, the cutset result and the full solve store of the run
    that just finished.  They stay ``None`` when the run was served
    whole from the persistent records cache (nothing new was computed).
    """

    translation: "object | None" = None
    cutsets: "MocusResult | None" = None
    solves: "dict[tuple, tuple[float, int]] | None" = None
    records: "dict[frozenset, McsQuantification] | None" = None
    note: str = ""
    out_translation: "object | None" = None
    out_mocus: "MocusResult | None" = None
    out_solves: "dict[tuple, tuple[float, int]] | None" = None


def analyze(
    sdft: SdFaultTree,
    options: AnalysisOptions | None = None,
    reuse: "AnalysisReuse | None" = None,
) -> AnalysisResult:
    """Run the full SD analysis and return an :class:`AnalysisResult`.

    With the robustness options of :class:`AnalysisOptions` the pipeline
    survives per-cutset solver failures (degradation ladder), resource
    exhaustion (cooperative budgets → partial results with conservative
    remainder bounds) and process kills (checkpoint/resume); everything
    that deviated from the clean path is enumerated in the result's
    :attr:`~repro.core.results.AnalysisResult.health` report.

    ``reuse`` is the incremental-analysis hook of
    :class:`repro.service.session.AnalysisSession` — see
    :class:`AnalysisReuse`.  Supplying it bypasses the whole-result
    records cache (the point is to run the pipeline and capture its
    artifacts), but never changes any computed value.
    """
    opts = options or AnalysisOptions()
    resolve_mode(opts.verify)
    if opts.static_engine not in _STATIC_ENGINES:
        raise ValueError(
            f"unknown static_engine {opts.static_engine!r}; "
            f"expected one of {_STATIC_ENGINES}"
        )
    obs = Observability.from_options(opts.trace_path, opts.collect_metrics)
    budget = _make_budget(opts, obs)
    health = HealthLog()
    verifier = Verifier(
        opts.verify,
        health=health,
        metrics=obs.metrics if obs.enabled else None,
        # The per-chain truncation error compounds into every quantified
        # value, so the float slack must dominate a coarse epsilon.
        tolerance=max(1e-9, 100.0 * opts.epsilon),
    )
    lint_report = _preflight_lint(sdft, opts, obs, health)
    sdft = _simplify_stage(sdft, opts, obs, health)
    manager, resumed = _open_checkpoint(sdft, opts, health)
    solve_cache = _open_solve_cache(opts)

    with obs.tracer.span(
        "analyze",
        model=getattr(sdft, "name", None) or "",
        horizon=opts.horizon,
        cutoff=opts.cutoff,
        jobs=str(opts.jobs),
    ):
        run_started = time.perf_counter()
        warm = None
        if reuse is None:
            warm = _restore_cached_result(
                sdft, opts, solve_cache, budget, manager, resumed, verifier, health
            )
        if warm is not None:
            records, static_bound, cache, perf, served = warm
            mcs_truncated = False
            mcs_remainder = 0.0
            record_sum = sum(
                r.probability for r in records if r.probability > opts.cutoff
            )
            method = served.get("method", "mcs-rare-event")
            total = float(served.get("total", record_sum))
            bdd_info = served.get("bdd") or {}
            if verifier.enabled:
                with obs.tracer.span("verify", mode=verifier.mode):
                    _verify_restored(
                        records, total, record_sum, method, opts, verifier
                    )
                health.info("verify", verifier.summary())
            timings = Timings(0.0, 0.0, time.perf_counter() - run_started)
        else:
            started = time.perf_counter()
            with obs.tracer.span("translate"):
                if reuse is not None and reuse.translation is not None:
                    translation = reuse.translation
                else:
                    translation = to_static(sdft, opts.horizon)
                mocus_tree = translation.tree
                if opts.mocus_probability_overrides:
                    mocus_tree = mocus_tree.with_probabilities(
                        opts.mocus_probability_overrides
                    )
            translation_seconds = time.perf_counter() - started

            started = time.perf_counter()
            with obs.tracer.span("mocus") as mocus_span:
                if reuse is not None and reuse.cutsets is not None:
                    # The session already produced (and vouches for) the
                    # cutsets of this tree; skip the search entirely.
                    mocus_result, restored_records = reuse.cutsets, {}
                    health.info(
                        "service", reuse.note or "cutsets supplied by session"
                    )
                else:
                    mocus_result, restored_records = _generate_cutsets(
                        mocus_tree,
                        opts,
                        budget,
                        health,
                        manager,
                        resumed,
                        obs,
                        solve_cache,
                    )
                mocus_span.set(
                    cutsets=len(mocus_result.cutsets),
                    truncated=mocus_result.truncated,
                )
            if mocus_result.truncated:
                health.budget(
                    "mocus",
                    f"cutset generation truncated after "
                    f"{len(mocus_result.cutsets)} cutsets; un-enumerated mass "
                    f"bounded by {mocus_result.remainder_bound:.3e}",
                )
            mcs_seconds = time.perf_counter() - started

            started = time.perf_counter()
            with obs.tracer.span("quantify") as quantify_span:
                records, cache, perf = _quantify_cutsets(
                    sdft,
                    translation.tree,
                    mocus_result,
                    opts,
                    budget,
                    health,
                    manager,
                    restored_records,
                    obs,
                    verifier,
                    solve_cache,
                    primed=reuse.solves if reuse is not None else None,
                    primed_records=(
                        reuse.records if reuse is not None else None
                    ),
                )
                quantify_span.set(
                    records=len(records),
                    dedup_hits=cache.hits,
                    dedup_misses=cache.misses,
                )
            record_sum = sum(
                r.probability for r in records if r.probability > opts.cutoff
            )
            total, method, bdd_info = _select_served_total(
                sdft,
                translation.tree,
                records,
                record_sum,
                opts,
                health,
                obs,
                solve_cache,
            )
            quantification_seconds = time.perf_counter() - started

            if verifier.enabled:
                _final_verification(
                    sdft,
                    mocus_tree,
                    mocus_result,
                    records,
                    total,
                    record_sum,
                    method,
                    opts,
                    verifier,
                    health,
                    obs,
                )
                health.info("verify", verifier.summary())

            static_bound, static_estimator = (
                mocus_result.cutsets.sound_estimate()
            )
            if static_estimator != "rare-event":
                health.info(
                    "quantify",
                    f"static worst-case rare-event sum overshoots 1.0; "
                    f"min-cut upper bound {static_bound:.6e} reported",
                )
            # The quantified total can exceed the static MCUB (the
            # records sum first-order); keep the bound a bound.
            static_bound = max(static_bound, total)
            mcs_truncated = mocus_result.truncated
            mcs_remainder = mocus_result.remainder_bound
            timings = Timings(
                translation_seconds, mcs_seconds, quantification_seconds
            )
            _store_cached_result(
                sdft,
                opts,
                solve_cache,
                budget,
                manager,
                resumed,
                mcs_truncated,
                records,
                static_bound,
                cache,
                perf,
                health,
                {
                    "method": method,
                    "total": total,
                    "bdd": bdd_info,
                },
            )
            if reuse is not None:
                reuse.out_translation = translation
                reuse.out_mocus = mocus_result
                reuse.out_solves = dict(cache._store)

    if solve_cache is not None:
        health.info("cache", solve_cache.summary())
        if obs.enabled:
            for name, value in solve_cache.stats().items():
                if value:
                    obs.metrics.count(f"cache.{name}", value)
        solve_cache.close()

    if obs.enabled:
        # The dedup counters come from the shared cache totals (not the
        # per-lookup call sites), which is what keeps them identical
        # across jobs=1/N — the same property PerfStats relies on.
        obs.metrics.count("quantify.dedup_hits", cache.hits)
        obs.metrics.count("quantify.dedup_misses", cache.misses)
    metrics_snapshot = obs.metrics.snapshot() if obs.enabled else None
    if opts.trace_path:
        from repro.obs.export import write_trace

        n_lines = write_trace(
            opts.trace_path,
            obs.tracer.records(),
            metrics_snapshot,
            attrs={
                "model": getattr(sdft, "name", None) or "",
                "horizon": opts.horizon,
                "cutoff": opts.cutoff,
                "jobs": str(opts.jobs),
            },
        )
        health.info(
            "obs", f"trace written to {opts.trace_path} ({n_lines} lines)"
        )

    if manager is not None:
        manager.clear()

    return AnalysisResult(
        failure_probability=total,
        static_bound=static_bound,
        horizon=opts.horizon,
        cutoff=opts.cutoff,
        records=tuple(records),
        timings=timings,
        classification=classification_report(sdft),
        cache_hits=cache.hits,
        cache_misses=cache.misses,
        health=health.freeze(),
        mcs_truncated=mcs_truncated,
        mcs_remainder_bound=mcs_remainder,
        perf=perf,
        metrics=metrics_snapshot,
        lint=lint_report,
        method=method,
        rare_event_sum=record_sum,
        bdd_nodes=int(bdd_info.get("nodes", 0)),
        bdd_ordering=str(bdd_info.get("ordering", "")),
        bdd_modules=int(bdd_info.get("modules", 0)),
    )


# ----------------------------------------------------------------------
# Resilient-pipeline helpers
# ----------------------------------------------------------------------


def _preflight_lint(
    sdft: SdFaultTree,
    opts: AnalysisOptions,
    obs: Observability,
    health: HealthLog,
) -> "LintReport | None":
    """Run the model linter before the pipeline (``opts.lint``).

    Error-level findings reject the model with
    :class:`~repro.errors.LintError` before translate/MOCUS/quantify do
    any work — the trace (when requested) is still written, containing
    the ``lint`` span and *no* phase spans.  Warnings become run-health
    notes and the report is returned to ride on the result.
    """
    if not opts.lint:
        return None
    from repro.errors import LintError
    from repro.lint import LintConfig
    from repro.lint import lint as run_lint

    with obs.tracer.span(
        "lint", model=getattr(sdft, "name", None) or ""
    ) as lint_span:
        report = run_lint(
            sdft, LintConfig(horizon=opts.horizon, cutoff=opts.cutoff)
        )
        counts = report.counts()
        lint_span.set(
            errors=counts["error"],
            warnings=counts["warning"],
            infos=counts["info"],
        )
    for finding in report.warnings:
        health.info(
            "lint", f"{finding.code} {finding.node}: {finding.message}"
        )
    if report.has_errors:
        if opts.trace_path:
            from repro.obs.export import write_trace

            write_trace(
                opts.trace_path,
                obs.tracer.records(),
                obs.metrics.snapshot() if obs.enabled else None,
                attrs={
                    "model": getattr(sdft, "name", None) or "",
                    "horizon": opts.horizon,
                    "cutoff": opts.cutoff,
                    "rejected_by_lint": True,
                },
            )
        details = "; ".join(
            f"{d.code} {d.node}: {d.message}" for d in report.errors
        )
        raise LintError(
            f"model rejected by lint with {len(report.errors)} error-level "
            f"diagnostic(s): {details}",
            report=report,
        )
    return report


def _is_static(sdft: SdFaultTree) -> bool:
    """Whether the model is a plain static tree (no chains, no triggers)."""
    return not sdft.dynamic_events and not sdft.triggers


def _select_served_total(
    sdft: SdFaultTree,
    static_tree: "FaultTree",
    records: "list[McsQuantification]",
    record_sum: float,
    opts: AnalysisOptions,
    health: HealthLog,
    obs: Observability,
    solve_cache: "SolveCache | None",
) -> tuple[float, str, dict]:
    """The served top probability, its method label, and BDD stats.

    The static-engine selection of the tentpole: a static model under
    ``static_engine`` "auto" or "bdd" quantifies exactly via the
    module-wise BDD compilation of :mod:`repro.bdd.quantify`
    (consulting the persistent bdd cache layer first); the node budget
    tripping falls back — with a health note — to the cutset path.  The
    cutset path serves the rare-event record sum while it is a
    probability and the min-cut upper bound over the record values once
    the sum overshoots 1.0, labelling which estimator answered.
    """
    bdd_info: dict = {}
    if opts.static_engine != "mcs" and _is_static(sdft):
        try:
            quantification = _bdd_quantification(
                static_tree, opts, health, obs, solve_cache
            )
        except BddBudgetExceeded as error:
            health.info(
                "bdd",
                f"static BDD engine abandoned ({error}); falling back to "
                f"cutset quantification",
            )
            if obs.enabled:
                obs.metrics.count("bdd.budget_trips")
        else:
            return quantification
    if record_sum > 1.0:
        mcub = _record_min_cut_upper_bound(records, opts.cutoff)
        health.info(
            "quantify",
            f"rare-event sum {record_sum:.6e} overshoots 1.0; serving the "
            f"min-cut upper bound {mcub:.6e} instead (method mcs-min-cut-ub)",
        )
        return mcub, "mcs-min-cut-ub", bdd_info
    return record_sum, "mcs-rare-event", bdd_info


def _bdd_quantification(
    static_tree: "FaultTree",
    opts: AnalysisOptions,
    health: HealthLog,
    obs: Observability,
    solve_cache: "SolveCache | None",
) -> tuple[float, str, dict]:
    """One exact BDD quantification (cache-aware), as a served total."""
    from repro.bdd.quantify import quantify_static_tree
    from repro.robust import faults

    digest = None
    if solve_cache is not None:
        from repro.perf.cache import tree_digest

        digest = tree_digest(static_tree)
        if not faults.any_armed():
            warm = solve_cache.get_bdd(digest, opts.bdd_node_budget, "auto")
            if warm is not None:
                probability, node_count, ordering, n_modules = warm
                health.info(
                    "bdd",
                    f"exact static quantification restored from cache "
                    f"({node_count} nodes, order {ordering})",
                )
                info = {
                    "nodes": node_count,
                    "ordering": ordering,
                    "modules": n_modules,
                }
                _observe_bdd(obs, node_count, ordering)
                return probability, "bdd-exact", info
    with obs.tracer.span("bdd", events=len(static_tree.events)) as span:
        quantification = quantify_static_tree(
            static_tree, node_budget=opts.bdd_node_budget
        )
        span.set(
            nodes=quantification.node_count,
            ordering=quantification.ordering,
            modules=quantification.n_modules,
        )
    if digest is not None:
        solve_cache.put_bdd(
            digest,
            opts.bdd_node_budget,
            "auto",
            quantification.probability,
            quantification.node_count,
            quantification.ordering,
            quantification.n_modules,
        )
    health.info(
        "bdd",
        f"static engine: exact BDD quantification "
        f"({quantification.node_count} nodes, order "
        f"{quantification.ordering}, {quantification.n_modules} modules)",
    )
    _observe_bdd(obs, quantification.node_count, quantification.ordering)
    info = {
        "nodes": quantification.node_count,
        "ordering": quantification.ordering,
        "modules": quantification.n_modules,
    }
    return quantification.probability, "bdd-exact", info


def _observe_bdd(obs: Observability, node_count: int, ordering: str) -> None:
    """Record the ``bdd.*`` metrics of one exact quantification."""
    if obs.enabled:
        obs.metrics.observe("bdd.nodes", node_count)
        obs.metrics.count(f"bdd.order.{ordering}")


def _record_min_cut_upper_bound(
    records: "list[McsQuantification]", cutoff: float
) -> float:
    """The MCUB ``1 - prod(1 - p̃(C))`` over the quantified records.

    The sound substitute served when the rare-event sum overshoots 1.0:
    still an upper bound for coherent trees (each ``p̃(C)`` is the
    probability of *some* failing scenario set, and the product bounds
    the probability that none occurs as if they were independent), and
    by construction never above 1.  Uses ``log1p`` to stay accurate when
    the per-record probabilities are small but numerous.
    """
    import math

    log_complement = 0.0
    for record in records:
        p = record.probability
        if p <= cutoff:
            continue
        if p >= 1.0:
            return 1.0
        log_complement += math.log1p(-p)
    return -math.expm1(log_complement)


def _final_verification(
    sdft: SdFaultTree,
    mocus_tree: "FaultTree",
    mocus_result: MocusResult,
    records: "list[McsQuantification]",
    total: float,
    record_sum: float,
    method: str,
    opts: AnalysisOptions,
    verifier: Verifier,
    health: HealthLog,
    obs: Observability,
) -> None:
    """End-of-quantification invariant checks (P1/P3 at run scope).

    The *served* total must be a genuine probability (P1 now rejects any
    value above 1.0 — the rare-event overshoot can no longer be served);
    the raw record sum is checked only for finiteness/sign, since it
    legitimately exceeds one.  The interval check mirrors
    :func:`repro.core.results.served_interval` so the pipeline verifies
    exactly the bracket it later reports.  In ``full`` mode the
    differential cross-checks run too.  Raises
    :class:`~repro.errors.InvariantViolation` on failure: a run-scope
    violation means the whole result is suspect, so no degradation path
    applies.
    """
    with obs.tracer.span("verify", mode=verifier.mode):
        verifier.check_value(
            mocus_result.remainder_bound, "MOCUS remainder bound"
        )
        verifier.check_value(record_sum, "rare-event record sum")
        verifier.check_probability(
            total, f"served failure probability ({method})"
        )
        lower, upper = served_interval(
            records, total, method, opts.cutoff, mocus_result.remainder_bound
        )
        verifier.check_interval(
            lower,
            total,
            upper,
            "failure probability interval",
        )
        if verifier.full:
            from repro.robust.crosscheck import run_crosschecks

            run_crosschecks(
                sdft,
                mocus_tree,
                mocus_result,
                records,
                opts,
                health,
                metrics=obs.metrics if obs.enabled else None,
            )


def _make_budget(
    opts: AnalysisOptions, obs: Observability | None = None
) -> "Budget | None":
    """A cooperative budget, or ``None`` when every axis is unlimited."""
    if (
        opts.wall_seconds is None
        and opts.max_total_states is None
        and opts.budget_cutsets is None
    ):
        return None
    return Budget(
        wall_seconds=opts.wall_seconds,
        max_total_states=opts.max_total_states,
        max_cutsets=opts.budget_cutsets,
        metrics=obs.metrics if obs is not None else None,
    )


def _open_checkpoint(
    sdft: SdFaultTree, opts: AnalysisOptions, health: HealthLog
) -> "tuple[CheckpointManager | None, dict | None]":
    """The run's checkpoint manager and, when resuming, its snapshot."""
    if not opts.checkpoint_path:
        return None, None
    from repro.robust.checkpoint import CheckpointManager, model_fingerprint

    manager = CheckpointManager(
        opts.checkpoint_path,
        model_fingerprint(sdft, opts.horizon, opts.cutoff),
        opts.checkpoint_interval_seconds,
    )
    payload = None
    if opts.resume:
        payload = manager.load()
        if payload is not None:
            health.info(
                "checkpoint",
                f"resumed from {opts.checkpoint_path} "
                f"(phase {payload['phase']!r})",
            )
    return manager, payload


# ----------------------------------------------------------------------
# Persistent-cache helpers (repro.perf.cache)
# ----------------------------------------------------------------------


def _open_solve_cache(opts: AnalysisOptions) -> "SolveCache | None":
    """The run's :class:`~repro.perf.cache.SolveCache`, or ``None``."""
    if not opts.cache_dir:
        return None
    from repro.perf.cache import SolveCache

    return SolveCache(opts.cache_dir)


def _simplify_stage(
    sdft: SdFaultTree,
    opts: AnalysisOptions,
    obs: Observability,
    health: HealthLog,
) -> SdFaultTree:
    """Shrink the model through the verified rewrite engine (``opts.simplify``).

    Runs after the pre-flight lint (findings should name the user's
    nodes, not the dieted survivors) and before the checkpoint opens, so
    checkpoints and the solve cache fingerprint the model actually
    analysed.  Soundness rests on :func:`repro.sem.simplify`'s per-round
    BDD proofs: an unverifiable round is reverted inside the engine, so
    whatever comes back is equivalent to the input on the top scope and
    every trigger-gate scope.
    """
    if not opts.simplify:
        return sdft
    from repro.sem import simplify as run_simplify

    with obs.tracer.span(
        "simplify", model=getattr(sdft, "name", None) or ""
    ) as span:
        result = run_simplify(sdft, node_budget=opts.bdd_node_budget)
        span.set(
            rewrites=len(result.rewrites),
            gates_before=result.gates_before,
            gates_after=result.gates_after,
            verified_scopes=result.verified_scopes,
            budget_hit=result.budget_hit,
        )
    if obs.enabled:
        obs.metrics.count("sem.rewrites", len(result.rewrites))
        obs.metrics.count("sem.removed_gates", result.removed_gates)
        obs.metrics.count("sem.removed_events", result.removed_events)
        obs.metrics.count("sem.verified_scopes", result.verified_scopes)
        if result.budget_hit:
            obs.metrics.count("sem.budget_trips")
    if result.changed:
        health.info(
            "simplify",
            f"verified diet: {result.gates_before} -> {result.gates_after} "
            f"gates, {result.events_before} -> {result.events_after} events "
            f"({len(result.rewrites)} rewrites, {result.verified_scopes} "
            f"scopes BDD-verified)",
        )
    if result.budget_hit:
        health.info(
            "simplify",
            "BDD node budget tripped during verification; unverified "
            "rewrites were discarded",
        )
    model = result.model
    assert isinstance(model, SdFaultTree)
    return model


def _records_options_key(opts: AnalysisOptions) -> tuple:
    """Everything value-affecting beyond the model/horizon/cutoff.

    ``jobs``, tracing, verification mode and checkpoint knobs are
    deliberately absent: the determinism contract says they never change
    analysis values, so a result computed under any of them answers all
    of them.  (Budgeted, checkpointed or resumed runs are not *stored*
    at all — see :func:`_store_cached_result`.)
    """
    overrides = None
    if opts.mocus_probability_overrides:
        overrides = tuple(
            sorted(
                (name, repr(value))
                for name, value in opts.mocus_probability_overrides.items()
            )
        )
    return (
        repr(opts.epsilon),
        opts.max_chain_states,
        opts.max_partials,
        opts.on_oversize,
        opts.lump_chains,
        overrides,
        opts.fault_isolation,
        opts.monte_carlo_runs,
        opts.monte_carlo_seed,
        repr(opts.mc_target_rel_error),
        opts.mc_engine,
        opts.static_engine,
        opts.bdd_node_budget,
        opts.simplify,
    )


def _restore_cached_result(
    sdft: SdFaultTree,
    opts: AnalysisOptions,
    solve_cache: "SolveCache | None",
    budget: "Budget | None",
    manager: "CheckpointManager | None",
    resumed: dict | None,
    verifier: Verifier,
    health: HealthLog,
) -> (
    "tuple[list[McsQuantification], float, QuantificationCache, PerfStats, dict]"
    " | None"
):
    """Serve the whole run from the records layer, when safe.

    Only unconstrained runs qualify: a budget, a checkpoint manager or
    a resume snapshot each carry semantics (partial results, phase
    bookkeeping) a restored record list cannot honour, ``full``
    verification needs the live pipeline for its differential
    cross-checks, and an armed fault campaign must exercise the real
    stages.  Returns ``(records, static_bound, cache, perf, served)`` or
    ``None`` — ``served`` carries the stored method label, served total
    and BDD stats of the original run.
    """
    from repro.robust import faults

    if (
        solve_cache is None
        or budget is not None
        or manager is not None
        or resumed is not None
        or opts.verify == "full"
        or faults.any_armed()
    ):
        return None
    from repro.perf.pool import resolve_jobs
    from repro.robust.checkpoint import model_fingerprint, record_from_dict

    fingerprint = model_fingerprint(sdft, opts.horizon, opts.cutoff)
    payload = solve_cache.get_records(fingerprint, _records_options_key(opts))
    if payload is None:
        return None
    try:
        records = [record_from_dict(raw) for raw in payload["records"]]
        static_bound = float(payload["static_bound"])
        dedup = payload.get("dedup", {})
        cache = QuantificationCache()
        cache.hits = int(dedup.get("hits", 0))
        cache.misses = int(dedup.get("misses", 0))
        perf = PerfStats(
            jobs=resolve_jobs(opts.jobs),
            dynamic_solves=int(dedup.get("dynamic_solves", 0)),
            unique_models_solved=int(dedup.get("unique_models_solved", 0)),
            dedup_ratio=float(dedup.get("dedup_ratio", 0.0)),
            worker_faults=0,
        )
        method = str(payload.get("method", "mcs-rare-event"))
        if method not in ("bdd-exact", "mcs-rare-event", "mcs-min-cut-ub"):
            raise ValueError(f"unknown stored method {method!r}")
        served = {
            "method": method,
            "bdd": dict(payload.get("bdd") or {}),
        }
        if "total" in payload:
            served["total"] = float(payload["total"])
    except (KeyError, TypeError, ValueError):
        # A malformed payload is a miss, never a failed analysis.
        solve_cache.errors += 1
        return None
    health.info(
        "cache",
        f"full-result hit: {len(records)} records restored "
        f"(translate/mocus/quantify skipped)",
    )
    return records, static_bound, cache, perf, served


def _verify_restored(
    records: "list[McsQuantification]",
    total: float,
    record_sum: float,
    method: str,
    opts: AnalysisOptions,
    verifier: Verifier,
) -> None:
    """Run-scope invariants (P1/P3) over a cache-restored record set.

    Restored runs were stored clean and non-truncated, so the remainder
    bound is zero and the per-record dominance check already passed when
    the records were produced; what must hold *now* is that the restored
    numbers still form a sound bracket — a rotted payload fails here.
    """
    verifier.check_value(record_sum, "rare-event record sum")
    verifier.check_probability(
        total, f"served failure probability ({method})"
    )
    lower, upper = served_interval(records, total, method, opts.cutoff, 0.0)
    verifier.check_interval(lower, total, upper, "failure probability interval")


def _store_cached_result(
    sdft: SdFaultTree,
    opts: AnalysisOptions,
    solve_cache: "SolveCache | None",
    budget: "Budget | None",
    manager: "CheckpointManager | None",
    resumed: dict | None,
    truncated: bool,
    records: "list[McsQuantification]",
    static_bound: float,
    cache: QuantificationCache,
    perf: "PerfStats",
    health: HealthLog,
    served: dict,
) -> None:
    """Persist a clean run's full record set to the records layer.

    Only a pristine run is stored: unbudgeted, uncheckpointed, not
    resumed, not truncated, and with a clean health report (no
    degradations, retries or warnings — a degraded record set would be
    served to later runs that might not degrade at all).  Fault-armed
    processes never write (enforced again inside the cache).
    """
    if (
        solve_cache is None
        or budget is not None
        or manager is not None
        or resumed is not None
        or truncated
        or not health.freeze().is_clean
    ):
        return
    from repro.robust.checkpoint import model_fingerprint, record_to_dict

    fingerprint = model_fingerprint(sdft, opts.horizon, opts.cutoff)
    solve_cache.put_records(
        fingerprint,
        _records_options_key(opts),
        {
            "records": [record_to_dict(r) for r in records],
            "static_bound": static_bound,
            "dedup": {
                "hits": cache.hits,
                "misses": cache.misses,
                "dynamic_solves": perf.dynamic_solves,
                "unique_models_solved": perf.unique_models_solved,
                "dedup_ratio": perf.dedup_ratio,
            },
            **served,
        },
    )


def _generate_cutsets(
    mocus_tree: "FaultTree",
    opts: AnalysisOptions,
    budget: "Budget | None",
    health: HealthLog,
    manager: "CheckpointManager | None",
    resumed: dict | None,
    obs: Observability = NULL_OBS,
    solve_cache: "SolveCache | None" = None,
) -> "tuple[MocusResult, dict]":
    """Run (or restore) cutset generation, surviving budget exhaustion.

    Returns the MOCUS result plus the quantification records restored
    from a quantify-phase checkpoint (empty when not resuming).

    With a persistent cache, an unconstrained run first consults the
    MOCUS layer: the cache stores the *pre-truncation* minimal cutsets
    of a completed search keyed by a content digest of the static tree,
    and the loading process re-sorts and re-truncates locally — so a
    warm list is element-for-element what this process's own search
    would have produced.
    """
    if resumed is not None and resumed["phase"] == "quantify":
        from repro.robust.checkpoint import record_from_dict

        state = resumed["state"]
        probabilities = {
            name: event.probability for name, event in mocus_tree.events.items()
        }
        cutsets = CutSetList.from_cutsets(
            [frozenset(names) for names in state["cutsets"]],
            probabilities,
            minimal=True,
        )
        restored = {
            record.cutset: record
            for record in map(record_from_dict, state["records"])
        }
        result = MocusResult(
            cutsets,
            truncated=state.get("mcs_truncated", False),
            remainder_bound=state.get("mcs_remainder_bound", 0.0),
        )
        return result, restored

    digest = None
    unconstrained = budget is None and manager is None and resumed is None
    if solve_cache is not None and unconstrained:
        from repro.perf.cache import tree_digest
        from repro.robust import faults

        digest = tree_digest(mocus_tree)
        if not faults.any_armed():
            names = solve_cache.get_mocus(
                digest, opts.cutoff, opts.max_partials
            )
            if names is not None:
                probabilities = {
                    name: event.probability
                    for name, event in mocus_tree.events.items()
                }
                cutsets = CutSetList.from_cutsets(
                    [frozenset(cutset) for cutset in names],
                    probabilities,
                    minimal=True,
                )
                if opts.cutoff > 0.0:
                    cutsets = cutsets.truncate(opts.cutoff)
                health.info(
                    "cache",
                    f"mocus: {len(cutsets)} cutsets restored "
                    f"(search skipped)",
                )
                return MocusResult(cutsets), {}

    mocus_resume = None
    if resumed is not None and resumed["phase"] == "mocus":
        mocus_resume = resumed["state"]["mocus"]
    on_progress = None
    if manager is not None:
        on_progress = lambda build: manager.maybe_save(  # noqa: E731
            "mocus", lambda: {"mocus": build()}
        )
    try:
        result = mocus(
            mocus_tree,
            MocusOptions(cutoff=opts.cutoff, max_partials=opts.max_partials),
            budget=budget,
            on_progress=on_progress,
            resume=mocus_resume,
            metrics=obs.metrics if obs.enabled else None,
        )
    except BudgetExceededError as error:
        if error.partial is None:
            raise
        result = error.partial.result
        # Persist the frontier: a resumed run with a fresh budget can
        # continue the search instead of redoing it.
        if manager is not None:
            manager.save("mocus", {"mocus": error.partial.frontier})
    if digest is not None and not result.truncated:
        solve_cache.put_mocus(
            digest,
            opts.cutoff,
            opts.max_partials,
            [list(cutset) for cutset in result.full_cutsets],
        )
    return result, {}


def _quantify_cutsets(
    sdft: SdFaultTree,
    translation_tree: "FaultTree",
    mocus_result: MocusResult,
    opts: AnalysisOptions,
    budget: "Budget | None",
    health: HealthLog,
    manager: "CheckpointManager | None",
    restored: dict,
    obs: Observability = NULL_OBS,
    verifier: Verifier | None = None,
    solve_cache: "SolveCache | None" = None,
    primed: "dict[tuple, tuple[float, int]] | None" = None,
    primed_records: "dict[frozenset, McsQuantification] | None" = None,
) -> "tuple[list[McsQuantification], bool]":
    """Quantify every cutset with isolation, budgets and checkpoints.

    ``opts.jobs`` selects the execution strategy: the serial in-process
    loop (``1``), or the dedup + process-pool farm of :mod:`repro.perf`
    — both produce identical records, totals and health events for the
    same analysis.

    ``primed`` seeds the in-memory cache with a previous run's solves
    (signature-keyed, so entries for changed ``FT_C`` models can never
    be hit); only changed models are re-solved.  ``primed_records``
    serves whole records the caller proved untouched by an edit through
    the same checked-restore path a checkpoint resume uses (checkpoint
    restores win on conflict — they belong to *this* run's frame).
    """
    from repro.perf.pool import resolve_jobs

    n_jobs = resolve_jobs(opts.jobs)
    cache = QuantificationCache()
    cache.persistent = solve_cache
    if primed:
        cache._store.update(primed)
    if primed_records:
        merged = dict(primed_records)
        merged.update(restored)
        restored = merged
    ctx = _QuantifyContext(
        sdft,
        translation_tree,
        opts,
        classification_report(sdft).by_gate,
        cache,
        budget,
        health,
        obs=obs,
        verifier=verifier if verifier is not None else Verifier(),
    )
    records: list[McsQuantification] = []
    cutset_list = list(mocus_result.cutsets)

    def state() -> dict:
        from repro.robust.checkpoint import record_to_dict

        return {
            "cutsets": [sorted(c) for c in cutset_list],
            "records": [record_to_dict(r) for r in records],
            "mcs_truncated": mocus_result.truncated,
            "mcs_remainder_bound": mocus_result.remainder_bound,
        }

    if manager is not None:
        # Phase transition: from here on the cutset list is fixed.
        manager.save("quantify", state())

    worker_faults = 0
    if n_jobs > 1:
        worker_faults = _quantify_parallel(
            ctx, cutset_list, records, restored, manager, state, n_jobs
        )
    else:
        for cutset in cutset_list:
            reused = restored.get(cutset)
            if reused is not None:
                records.append(ctx.checked(reused))
                continue
            records.append(ctx.quantify(cutset))
            if manager is not None:
                manager.maybe_save("quantify", state)

    cache = ctx.cache
    dynamic_solves = cache.hits + cache.misses
    perf = PerfStats(
        jobs=n_jobs,
        dynamic_solves=dynamic_solves,
        unique_models_solved=cache.misses,
        dedup_ratio=cache.hits / dynamic_solves if dynamic_solves else 0.0,
        worker_faults=worker_faults,
    )
    return records, cache, perf


@dataclass
class _QuantifyContext:
    """Shared state and the per-cutset policy of the quantification phase.

    :meth:`quantify` is the exact serial behaviour — budget gate, then
    the (optionally ladder-protected) solve, converting failures into
    health events and conservative records.  The parallel fold reuses it
    verbatim for deferred and worker-failed cutsets, which is what keeps
    serial and parallel runs bit-identical in records and health.
    """

    sdft: SdFaultTree
    translation_tree: object
    opts: AnalysisOptions
    classes: dict
    cache: QuantificationCache
    budget: "Budget | None"
    health: HealthLog
    obs: object = NULL_OBS
    verifier: Verifier = field(default_factory=Verifier)
    out_of_budget: bool = False

    def quantify(self, cutset: frozenset) -> McsQuantification:
        """One cutset through the full serial path (gate, solve, recover)."""
        gated = self._budget_gate(cutset)
        if gated is not None:
            return gated
        try:
            return self.checked(
                _quantify_one(
                    self.sdft,
                    cutset,
                    self.opts,
                    self.classes,
                    self.cache,
                    self.budget,
                    self.health,
                    self.obs,
                )
            )
        except BudgetExceededError as error:
            self.health.budget("quantify", str(error), cutset=cutset)
            self.out_of_budget = True
            return self._skipped(cutset)
        except (NumericalError, AnalysisError) as error:
            if not self.opts.fault_isolation:
                raise
            self.health.degradation(
                "quantify",
                f"every ladder rung failed ({error}); static worst-case "
                f"bound substituted",
                cutset=cutset,
                rung="skipped",
            )
            return self._skipped(cutset)

    def checked(self, record: McsQuantification) -> McsQuantification:
        """Apply the per-record invariants (``opts.verify``) to a record.

        A clean record (or any record with verification off) passes
        through untouched.  A violating record either raises
        :class:`~repro.errors.InvariantViolation` or — under fault
        isolation — is replaced by the conservative skipped record, with
        a health event naming the violated invariant.  Skipped records
        are exempt: they *are* the conservative substitute.
        """
        if not self.verifier.enabled or record.rung == "skipped":
            return record
        violation = self.verifier.record_violation(
            record, _worst_case_probability(self.translation_tree, record.cutset)
        )
        if violation is None:
            return record
        if not self.opts.fault_isolation:
            raise InvariantViolation(violation)
        self.health.degradation(
            "verify",
            f"invariant violation: {violation}; static worst-case bound "
            f"substituted",
            cutset=record.cutset,
            rung="skipped",
        )
        return self._skipped(record.cutset)

    def fold_direct(self, model: "CutsetModel") -> McsQuantification:
        """A static or trivially-zero cutset model (no chain solve)."""
        gated = self._budget_gate(model.cutset)
        if gated is not None:
            return gated
        return self.checked(quantify_model(model, self.opts.horizon))

    def fold_solved(
        self, model: "CutsetModel", key: tuple, result: "SolveResult"
    ) -> McsQuantification:
        """Fold one pool-solved unique value onto one member cutset.

        Drives the shared cache exactly like the serial loop would: the
        group's first member in cutset order records the miss (and is
        charged to the state budget), every later member is a hit.
        """
        gated = self._budget_gate(model.cutset)
        if gated is not None:
            return gated
        found = self.cache.get(key)
        if found is not None:
            probability, chain_states = found
            return self.checked(
                McsQuantification(
                    model.cutset,
                    probability * model.static_factor,
                    True,
                    model.n_dynamic_in_cutset,
                    model.n_dynamic_in_model,
                    model.n_added_dynamic,
                    chain_states,
                    0.0,
                    cache_hit=True,
                    dependencies=model.dependencies,
                )
            )
        violation = self.verifier.value_violation(
            result.probability,
            f"pool-solved probability for {'+'.join(sorted(model.cutset))}",
        )
        if violation is not None:
            # The pool shipped an impossible value.  Treat it like a
            # failed task — do not poison the shared cache; recover this
            # member in the parent through the standard path.
            self.health.warning(
                "verify",
                f"{violation}; re-solving in the parent",
                cutset=model.cutset,
            )
            return self.quantify(model.cutset)
        if self.budget is not None:
            limit = self.budget.max_total_states
            if (
                limit is not None
                and self.budget.states_charged + result.chain_states > limit
            ):
                # The state budget is about to trip.  Route this member
                # through the serial per-cutset path instead, so the
                # charge, the failure and any ladder descent happen with
                # exactly the serial loop's accounting and health events.
                return self.quantify(model.cutset)
            self.budget.charge_states(result.chain_states, "quantify")
        self.cache.put(key, result.probability, result.chain_states)
        if self.cache.persistent is not None and result.solve_seconds > 0.0:
            # Write a *pool-solved* value through to disk; cache-served
            # values (solve_seconds == 0) are already there.
            self.cache.persistent.put_solve(
                key,
                self.opts.epsilon,
                self.opts.max_chain_states,
                self.opts.lump_chains,
                result.probability,
                result.chain_states,
            )
        return self.checked(
            McsQuantification(
                model.cutset,
                result.probability * model.static_factor,
                True,
                model.n_dynamic_in_cutset,
                model.n_dynamic_in_model,
                model.n_added_dynamic,
                result.chain_states,
                result.solve_seconds,
                rung="lumped" if self.opts.lump_chains else "exact",
                dependencies=model.dependencies,
            )
        )

    def _budget_gate(self, cutset: frozenset) -> "McsQuantification | None":
        """The skipped record once the wall-clock budget has expired."""
        if (
            not self.out_of_budget
            and self.budget is not None
            and self.budget.expired()
        ):
            self.health.budget(
                "quantify",
                "wall-clock budget exhausted; remaining cutsets carry "
                "their conservative static worst-case bound",
            )
            self.out_of_budget = True
        if self.out_of_budget:
            return self._skipped(cutset)
        return None

    def _skipped(self, cutset: frozenset) -> McsQuantification:
        return _skipped_record(
            self.sdft,
            cutset,
            _worst_case_probability(self.translation_tree, cutset),
        )


def _quantify_parallel(
    ctx: _QuantifyContext,
    cutset_list: list,
    records: list,
    restored: dict,
    manager: "CheckpointManager | None",
    state: "Callable[[], dict]",
    n_jobs: int,
) -> int:
    """Dedup + process-pool quantification (the :mod:`repro.perf` path).

    Three phases: *plan* — build every cutset's ``FT_C`` and group the
    dynamic ones by model signature; *solve* — run one task per unique
    model on the farm, largest first; *fold* — append records in
    deterministic cutset order, advancing over the longest prefix whose
    solves have landed (so checkpoints stay valid mid-run).  Returns the
    number of worker-failed tasks (their cutsets are recovered in the
    parent via :meth:`_QuantifyContext.quantify`).
    """
    from repro.perf.dedup import DedupPlan
    from repro.perf.pool import SolveResult, SolveTask, fork_available, warm_farm
    from repro.perf.schedule import estimate_chain_states

    opts = ctx.opts
    plan = DedupPlan()
    # One entry per cutset: ("done", record) | ("serial", cutset) |
    # ("direct", model) | ("group", key, model).
    entries: list[tuple] = []
    for cutset in cutset_list:
        reused = restored.get(cutset)
        if reused is not None:
            entries.append(("done", reused))
            continue
        try:
            model = build_cutset_model(ctx.sdft, cutset, ctx.classes)
        except (NumericalError, AnalysisError):
            # Defer to the per-cutset path, which reproduces the failure
            # — and its health events — exactly as the serial loop would.
            entries.append(("serial", cutset))
            continue
        if model.model is None or model.trivially_zero:
            entries.append(("direct", model))
            continue
        key = ctx.cache.signature(model.model, opts.horizon)
        plan.add(key, model)
        entries.append(("group", key, model))

    wall_allowance = None
    state_allowance = None
    if ctx.budget is not None:
        wall_allowance = ctx.budget.remaining_seconds()
        if ctx.budget.max_total_states is not None:
            state_allowance = max(
                0, ctx.budget.max_total_states - ctx.budget.states_charged
            )
    obs = ctx.obs
    groups = plan.groups
    # Pre-resolve unique models from the in-memory cache first: a
    # session-primed (or earlier-run) signature never becomes a pool
    # task.  The fold then serves every member as a cache hit, exactly
    # like the serial loop.
    for task_id, group in enumerate(groups):
        primed = ctx.cache._store.get(group.key)
        if primed is not None:
            probability, chain_states = primed
            group.result = SolveResult(
                task_id, probability=probability, chain_states=chain_states
            )
    persistent = ctx.cache.persistent
    if persistent is not None:
        # Pre-resolve unique models from the on-disk cache: a warm group
        # never becomes a pool task at all.  The synthesised result then
        # flows through exactly the same fold (value guard, budget
        # charge, in-memory cache prime) as a pool-solved one.
        for task_id, group in enumerate(groups):
            if group.result is not None:
                continue
            warm = persistent.get_solve(
                group.key,
                opts.epsilon,
                opts.max_chain_states,
                opts.lump_chains,
            )
            if warm is not None:
                probability, chain_states = warm
                group.result = SolveResult(
                    task_id,
                    probability=probability,
                    chain_states=chain_states,
                )
    pending = [
        (task_id, group)
        for task_id, group in enumerate(groups)
        if group.result is None
    ]
    # With fork available, workers inherit the deduped model table from
    # the parent's memory and tasks carry just an index — no per-task
    # model pickling.  Without fork, models ship inline as before.
    use_table = fork_available()
    tasks = [
        SolveTask(
            task_id=task_id,
            model=None if use_table else group.representative.model,
            horizon=opts.horizon,
            epsilon=opts.epsilon,
            max_chain_states=opts.max_chain_states,
            lump_chains=opts.lump_chains,
            cutset=tuple(sorted(group.representative.cutset)),
            wall_allowance=wall_allowance,
            state_allowance=state_allowance,
            estimated_states=estimate_chain_states(group.representative.model),
            collect_obs=obs.enabled,
            submitted_at=time.time() if obs.enabled else None,
            model_index=index if use_table else -1,
        )
        for index, (task_id, group) in enumerate(pending)
    ]

    worker_faults = 0
    next_index = 0

    def fold_entry(entry: tuple) -> None:
        kind = entry[0]
        if kind == "done":
            records.append(ctx.checked(entry[1]))
            return
        if kind == "serial":
            records.append(ctx.quantify(entry[1]))
        elif kind == "direct":
            records.append(ctx.fold_direct(entry[1]))
        else:
            _, key, model = entry
            result = plan.get(key).result
            if result.ok:
                records.append(ctx.fold_solved(model, key, result))
            else:
                # Worker-side failure: recover this member in the parent
                # through the standard (ladder-protected) path.
                records.append(ctx.quantify(model.cutset))
        if manager is not None:
            manager.maybe_save("quantify", state)

    def fold_ready() -> None:
        nonlocal next_index
        while next_index < len(entries):
            entry = entries[next_index]
            if entry[0] == "group" and plan.get(entry[1]).result is None:
                break
            fold_entry(entry)
            next_index += 1

    if tasks:
        farm = warm_farm(
            n_jobs,
            task_timeout=opts.pool_task_timeout_seconds,
            options_key=_worker_options_key(opts),
        )
        if use_table:
            farm.set_model_table(
                [group.representative.model for _, group in pending],
                tuple(group.key for _, group in pending),
            )
        for result in farm.run_batched(tasks):
            group = groups[result.task_id]
            group.result = result
            if not result.ok:
                worker_faults += 1
            if obs.enabled:
                _merge_worker_obs(obs, result)
            fold_ready()
        _surface_farm_events(farm, ctx.health, obs)
        if obs.enabled and farm.batch_sizes:
            obs.metrics.count("pool.batches", len(farm.batch_sizes))
            for size in farm.batch_sizes:
                obs.metrics.observe("pool.batch_size", size)
    fold_ready()
    return worker_faults


def _worker_options_key(opts: AnalysisOptions) -> tuple:
    """Fingerprint of the options a pool worker's behaviour depends on.

    Keys the warm farm (see :func:`repro.perf.pool.warm_farm`): when any
    of these change between analyses, serving the old pool would mean
    serving stale worker config, so the pool is rebuilt instead.
    """
    return (repr(opts.epsilon), opts.max_chain_states, opts.lump_chains)


def _surface_farm_events(
    farm: "SolverFarm", health: HealthLog, obs: Observability
) -> None:
    """Turn the farm's recovery actions into health entries and metrics.

    Pool rebuilds, watchdog timeouts, crash retries and quarantines are
    operational facts about *this* run's environment — they appear in
    the health report (so a crash-scarred run is never indistinguishable
    from a clean one) but never change analysis values: the affected
    cutsets were re-answered through the standard degradation path.
    """
    for event in farm.events:
        cutset = frozenset(event.cutset) if event.cutset else None
        if event.kind == "retry":
            health.retry("pool", event.message, cutset=cutset)
        elif event.kind == "refresh":
            # A deliberate option-driven rebuild is routine — and it is
            # a fact about the *previous* run's options, not this run's
            # analysis, so it stays out of the health report entirely
            # (health must be identical across jobs and farm history);
            # it is still counted in the pool.rebuilds metric below.
            continue
        else:
            health.warning("pool", event.message, cutset=cutset)
    if obs.enabled:
        for kind, metric in (
            ("rebuild", "pool.rebuilds"),
            ("refresh", "pool.rebuilds"),
            ("timeout", "pool.timeouts"),
            ("retry", "pool.retries"),
            ("quarantine", "pool.quarantined"),
            ("probe", "pool.probes"),
        ):
            count = sum(1 for e in farm.events if e.kind == kind)
            if count:
                obs.metrics.count(metric, count)


def _merge_worker_obs(obs: Observability, result: "SolveResult") -> None:
    """Graft one worker's trace slice and metrics into the parent's.

    Worker span ids are prefixed per task, so grafting cannot collide;
    the shipped roots are re-parented under the currently open span
    (the ``quantify`` phase).  The ``pool.*`` quantities are timing
    metrics — informative, never part of the cross-``jobs`` determinism
    guarantee (the analysis-derived ``transient.*`` counters shipped in
    ``result.metrics`` are).
    """
    if result.spans:
        obs.tracer.add_foreign(result.spans, parent_id=obs.tracer.current_id)
    if result.metrics:
        obs.metrics.merge_snapshot(result.metrics)
    obs.metrics.count("pool.tasks")
    if not result.ok:
        obs.metrics.count("pool.worker_faults")
    obs.metrics.observe("pool.queue_wait_seconds", result.queue_wait_seconds)
    if result.ok:
        obs.metrics.observe("pool.task_solve_seconds", result.solve_seconds)


def _quantify_one(
    sdft: SdFaultTree,
    cutset: frozenset,
    opts: AnalysisOptions,
    classes: "ClassificationReport",
    cache: QuantificationCache,
    budget: "Budget | None",
    health: HealthLog,
    obs: Observability = NULL_OBS,
) -> McsQuantification:
    """Quantify one cutset, through the ladder when isolation is on."""
    if not opts.fault_isolation:
        record = quantify_cutset(
            sdft,
            cutset,
            opts.horizon,
            classes=classes,
            cache=cache,
            epsilon=opts.epsilon,
            max_chain_states=opts.max_chain_states,
            on_oversize=opts.on_oversize,
            lump_chains=opts.lump_chains,
            budget=budget,
            obs=obs,
        )
        if record.bounded:
            health.degradation(
                "quantify",
                "oversized chain bounded by the interval approximation",
                cutset=cutset,
                rung="bound",
            )
        return record

    from repro.robust.ladder import quantify_with_ladder

    outcome = quantify_with_ladder(
        sdft,
        cutset,
        opts.horizon,
        classes=classes,
        cache=cache,
        epsilon=opts.epsilon,
        max_chain_states=opts.max_chain_states,
        lump_chains=opts.lump_chains,
        budget=budget,
        monte_carlo_runs=opts.monte_carlo_runs,
        monte_carlo_seed=opts.monte_carlo_seed,
        monte_carlo_target_rel_error=opts.mc_target_rel_error,
        monte_carlo_engine=opts.mc_engine,
        obs=obs if obs.enabled else None,
    )
    for attempt in outcome.attempts:
        health.retry(
            "quantify",
            f"rung failed: {attempt.error}",
            cutset=cutset,
            rung=attempt.rung,
        )
    if outcome.degraded:
        detail = "fallback value substituted"
        if outcome.note:
            detail = f"{detail} ({outcome.note})"
        health.degradation(
            "quantify",
            detail,
            cutset=cutset,
            rung=outcome.rung,
        )
    return outcome.record


def _worst_case_probability(
    translation_tree: "FaultTree", cutset: frozenset
) -> float:
    """The static worst-case ``p̄(C)`` — inequality (1)'s upper bound.

    Computed from the *translation* tree (never the MOCUS override
    probabilities), so it soundly dominates ``p̃(C)``.
    """
    probability = 1.0
    for name in cutset:
        probability *= translation_tree.events[name].probability
    return probability


def _skipped_record(
    sdft: SdFaultTree, cutset: frozenset, worst_case: float
) -> McsQuantification:
    """A conservative placeholder for a cutset the budget never reached."""
    n_dynamic = sum(1 for name in cutset if sdft.is_dynamic(name))
    return McsQuantification(
        cutset,
        worst_case,
        n_dynamic > 0,
        n_dynamic,
        n_dynamic,
        0,
        0,
        0.0,
        bounded=True,
        lower_bound=0.0,
        rung="skipped",
    )


def analyze_curve(
    sdft: SdFaultTree,
    horizons: "list[float] | tuple[float, ...]",
    options: AnalysisOptions | None = None,
) -> dict[float, float]:
    """Failure probability as a function of the mission time.

    Evaluates ``Pr[Reach^{<=t}(F)]`` for every horizon in ``horizons``
    over a *single* cutset list: the list is generated once at the
    largest horizon, where the worst-case probabilities — monotone in
    ``t`` — are largest, so no cutset relevant at any requested horizon
    is missed.  Per-horizon quantification reuses the shared chain-solve
    cache, which makes a 10-point curve cost far less than 10 analyses.
    """
    if not horizons:
        return {}
    opts = options or AnalysisOptions()
    widest = max(horizons)
    if min(horizons) < 0.0:
        raise ValueError(f"horizons must be non-negative, got {sorted(horizons)}")

    translation = to_static(sdft, widest)
    mocus_tree = translation.tree
    if opts.mocus_probability_overrides:
        mocus_tree = mocus_tree.with_probabilities(opts.mocus_probability_overrides)
    cutsets = mocus(
        mocus_tree, MocusOptions(cutoff=opts.cutoff, max_partials=opts.max_partials)
    ).cutsets

    classes = classification_report(sdft).by_gate
    cache = QuantificationCache()
    curve: dict[float, float] = {}
    for horizon in sorted(set(horizons)):
        total = 0.0
        for cutset in cutsets:
            record = quantify_cutset(
                sdft,
                cutset,
                horizon,
                classes=classes,
                cache=cache,
                epsilon=opts.epsilon,
                max_chain_states=opts.max_chain_states,
                on_oversize=opts.on_oversize,
                lump_chains=opts.lump_chains,
            )
            if record.probability > opts.cutoff:
                total += record.probability
        curve[horizon] = total
    return curve


def analyze_exact(
    sdft: SdFaultTree,
    horizon: float,
    max_states: int = 200_000,
    epsilon: float = 1e-12,
) -> float:
    """Exact ``Pr[Reach^{<=t}(F)]`` via the full product chain.

    Exponential in the number of basic events — the baseline the paper's
    decomposition replaces.  Use only on small trees (or let
    ``max_states`` raise).
    """
    from repro.ctmc.product import build_product
    from repro.ctmc.transient import reach_probability

    product = build_product(sdft, max_states=max_states)
    return reach_probability(product.chain, horizon, epsilon=epsilon)


def analyze_static(
    sdft: SdFaultTree,
    options: AnalysisOptions | None = None,
) -> float:
    """The "no timing" baseline: analyse the tree as purely static.

    Every dynamic event is frozen at its worst-case (triggered at time
    zero, never untriggered) failure probability over the horizon and
    triggers become AND gates — this mirrors what a static tool computes
    from a conventional model where every component runs from time zero
    and timing interdependencies are ignored.
    """
    opts = options or AnalysisOptions()
    translation = to_static(sdft, opts.horizon)
    result = rare_event_probability(
        translation.tree, MocusOptions(cutoff=opts.cutoff, max_partials=opts.max_partials)
    )
    return result.value
