"""Worst-case failure probabilities for dynamic basic events.

The static translation ``FT̄`` (Section V-B2) needs a probability for
each basic event that used to be dynamic.  Computing the *true*
probability of a triggered event failing within the horizon would
require the whole tree's state space, so the paper substitutes the
worst case over all possible triggering environments:

``p(a) = sup over all SD trees containing a of Pr[Reach^{<=t}(Failed(a))]``

For the monotone chain families used in practice (and everywhere in the
paper's experiments) the supremum is attained by the environment that
triggers the event at time 0 and never untriggers it: being switched on
earlier only increases exposure to the (higher) active failure rates,
and untriggering only pauses degradation.  That shape is exactly
:meth:`~repro.ctmc.triggered.TriggeredCtmc.untriggered_view`, reducing
the worst case to a first-passage computation on the event's own chain.

Correctness note: the worst-case choice is conservative by construction
(``FT`` itself is in the supremum's range), so the MOCUS cutoff on
``FT̄`` never loses a cutset whose true probability is above the cutoff.
"""

from __future__ import annotations

from repro.ctmc.chain import Ctmc
from repro.ctmc.transient import failure_probability
from repro.ctmc.triggered import TriggeredCtmc
from repro.core.sdft import SdFaultTree

__all__ = ["worst_case_probability", "worst_case_probabilities"]


def worst_case_probability(
    chain: Ctmc, horizon: float, epsilon: float = 1e-12
) -> float:
    """Worst-case probability that the event fails within the horizon.

    For an untriggered chain this is simply its first-passage
    probability to the failed states; for a triggered chain the initial
    distribution is pushed through ``switch_on`` first (triggered at
    time 0, never untriggered).
    """
    if isinstance(chain, TriggeredCtmc):
        chain = chain.untriggered_view()
    return failure_probability(chain, horizon, epsilon=epsilon)


def worst_case_probabilities(
    sdft: SdFaultTree, horizon: float, epsilon: float = 1e-12
) -> dict[str, float]:
    """Worst-case probabilities for every dynamic event of the tree.

    Identical chain objects shared by several events are solved once.
    """
    by_chain: dict[int, float] = {}
    result: dict[str, float] = {}
    for name, event in sdft.dynamic_events.items():
        key = id(event.chain)
        if key not in by_chain:
            by_chain[key] = worst_case_probability(event.chain, horizon, epsilon)
        result[name] = by_chain[key]
    return result
