"""Bounded quantification of oversized cutset models (paper, Section VIII).

The paper's conclusions sketch the escape hatch for models that violate
the trigger restrictions badly enough to make some per-cutset chain too
large: *"Failure probabilities may be under-approximated by disregarding
interplays of several dynamic basic events.  Dually, an over-approximation
may be achieved by allowing dynamic basic events interfere irrespective
of static basic events."*  This module implements that interval
fallback:

* **Upper bound** — treat every dynamic event of the cutset as if it
  were switched on at time 0 and never untriggered (each triggered
  chain replaced by its untriggered view) and drop the trigger
  coupling entirely.  Every event then fails independently and at its
  maximal exposure; the product of worst-case first-passage
  probabilities dominates the true simultaneous-failure probability —
  this is exactly the paper's inequality (1), the same bound that makes
  the MOCUS cutoff on ``FT̄`` conservative.
* **Lower bound** — keep each event's *own* timing but count only the
  runs in which every triggered event's trigger is already failed at
  time 0 by the cutset's static events; if any triggered event depends
  on dynamic trigger timing, the contribution of those interleavings is
  disregarded (bounded below by zero for that part).  Concretely:
  events whose triggers are statically satisfied use their untriggered
  view, all others contribute their passive (never-triggered) failure
  probability — the minimal exposure consistent with the semantics.

Both bounds multiply with the cutset's static factor as usual.  The
analyzer uses this interval when a cutset's chain would exceed
``max_chain_states`` and interval mode is enabled, instead of failing
the whole analysis.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.cutset_model import TOP_GATE, CutsetModel
from repro.ctmc.transient import failure_probability
from repro.ctmc.triggered import TriggeredCtmc

__all__ = ["ProbabilityInterval", "bound_cutset"]


@dataclass(frozen=True)
class ProbabilityInterval:
    """A two-sided bound on one cutset's quantified probability."""

    lower: float
    upper: float

    def __post_init__(self) -> None:
        assert self.lower <= self.upper + 1e-15, (self.lower, self.upper)

    @property
    def width(self) -> float:
        """Absolute width of the interval."""
        return self.upper - self.lower

    def midpoint(self) -> float:
        """The centre of the interval (a pragmatic point estimate)."""
        return 0.5 * (self.lower + self.upper)


def bound_cutset(
    model: CutsetModel, horizon: float, epsilon: float = 1e-12
) -> ProbabilityInterval:
    """Bound ``p̃(C)`` without building the product chain.

    Works directly on the cutset model's per-event chains; cost is one
    small single-chain transient solve per dynamic event in the cutset.
    """
    if model.trivially_zero:
        return ProbabilityInterval(0.0, 0.0)
    if model.model is None:
        return ProbabilityInterval(model.static_factor, model.static_factor)

    sdft_c = model.model
    # Only the cutset's own dynamic events appear under the top AND gate.
    top_children = sdft_c.gates[TOP_GATE].children

    upper = 1.0
    lower = 1.0
    for name in top_children:
        chain = sdft_c.chain_of(name)
        if isinstance(chain, TriggeredCtmc):
            on_view = chain.untriggered_view()
            upper *= failure_probability(on_view, horizon, epsilon=epsilon)
            # Never-triggered exposure: the chain as-is starts (and
            # stays) off, so only passive failure paths count — and the
            # off-states are never failed, so this is zero unless the
            # trigger is statically satisfied (then the event would have
            # been rewritten to its untriggered view already).
            lower *= 0.0
        else:
            value = failure_probability(chain, horizon, epsilon=epsilon)
            upper *= value
            lower *= value
    return ProbabilityInterval(
        lower * model.static_factor, upper * model.static_factor
    )
