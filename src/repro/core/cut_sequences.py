"""Quantified minimal cut sequences: who completes the cut, and when.

A minimal cutset says *which* events must fail together; dynamic models
also know the *order*.  The BDMP line of related work ([12] in the
paper) extracts minimal cut sequences qualitatively; here the per-cutset
chain gives the quantitative version directly: for every dynamic event
of the cutset, the probability that it is the one whose failure
*completes* the simultaneous cut (within the horizon).

Computation — flux attribution on the cutset's product chain with the
failed set made absorbing:

* the expected time spent in each transient state is the occupancy
  integral ``∫_0^t pi_s(u) du`` (:func:`repro.ctmc.transient.occupancy_integrals`);
* the probability of absorbing through a particular transition is its
  rate times the source occupancy;
* summing over the transitions whose *moving event* is ``a`` (the
  product construction records the split) gives the completion
  probability of ``a``; initial mass already inside the failed set is
  reported as completion "at time zero" (static events did it).

The attributions sum to the cutset's ``p̃(C)`` (up to the truncation
error of the integrals), which the tests assert.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.classify import TriggerClass
from repro.core.cutset_model import build_cutset_model
from repro.core.sdft import SdFaultTree
from repro.ctmc.product import build_product
from repro.ctmc.transient import occupancy_integrals


__all__ = ["CutCompletion", "completion_distribution"]

#: Pseudo-event name for mass that starts inside the failed set.
AT_TIME_ZERO = "<initial>"


@dataclass(frozen=True)
class CutCompletion:
    """Completion attribution of one minimal cutset.

    ``by_event`` maps each dynamic event (plus :data:`AT_TIME_ZERO`) to
    the probability that the cut is completed by that event's failure
    before the horizon, already scaled by the cutset's static factor.
    """

    cutset: frozenset[str]
    horizon: float
    by_event: dict[str, float]

    @property
    def total(self) -> float:
        """Sum of attributions — the cutset's quantified probability."""
        return sum(self.by_event.values())

    def most_likely_completer(self) -> str | None:
        """The event most likely to strike last (None for empty cuts)."""
        if not self.by_event:
            return None
        return max(self.by_event, key=self.by_event.get)


def completion_distribution(
    sdft: SdFaultTree,
    cutset: frozenset[str],
    horizon: float,
    classes: dict[str, TriggerClass] | None = None,
    max_chain_states: int = 200_000,
    epsilon: float = 1e-10,
) -> CutCompletion:
    """Attribute ``p̃(C)`` to the events that complete the cut.

    Static cutsets complete at time zero with probability
    ``prod p(a)``; dynamic cutsets are attributed by flux analysis on
    the absorbing per-cutset chain.
    """
    model = build_cutset_model(sdft, cutset, classes)
    if model.trivially_zero:
        return CutCompletion(cutset, horizon, {})
    if model.model is None:
        return CutCompletion(
            cutset, horizon, {AT_TIME_ZERO: model.static_factor}
        )

    product = build_product(model.model, max_states=max_chain_states)
    chain = product.chain
    failed = chain.failed
    absorbed = chain.with_absorbing(failed)
    occupancy = occupancy_integrals(absorbed, horizon, epsilon)

    attributions: dict[str, float] = {}
    initial_inside = sum(p for s, p in chain.initial.items() if s in failed)
    if initial_inside > 0.0:
        attributions[AT_TIME_ZERO] = initial_inside * model.static_factor

    for (source, target), split in product.transition_events.items():
        if source in failed or target not in failed:
            continue
        source_occupancy = occupancy[chain.index[source]]
        for event_name, rate in split.items():
            flux = rate * source_occupancy * model.static_factor
            if flux <= 0.0:
                continue
            attributions[event_name] = attributions.get(event_name, 0.0) + flux
    return CutCompletion(cutset, horizon, attributions)
