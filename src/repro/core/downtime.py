"""Expected-downtime (unavailability) analysis of SD fault trees.

Reachability answers "did the system ever fail before ``t``"; repairable
systems also care *how long* the system was down — the expected time the
top event holds within the mission window.  This module computes it
with the same decomposition as the probability analysis:

* per cutset, the expected time during which *all* the cutset's events
  are simultaneously failed is the downtime integral of the cutset's
  ``FT_C`` chain (:func:`repro.ctmc.analysis.expected_downtime`) times
  the static factor;
* the rare-event sum over cutsets over-approximates the top downtime
  (every failed interval of the top event is covered by at least one
  cutset's simultaneous-failure interval, and overlaps double-count).

The exact counterpart :func:`exact_expected_downtime` integrates the
full product chain and serves as the oracle in tests.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.analyzer import AnalysisOptions
from repro.core.classify import classification_report
from repro.core.cutset_model import build_cutset_model
from repro.core.sdft import SdFaultTree
from repro.core.to_static import to_static
from repro.ctmc.analysis import expected_downtime
from repro.ctmc.product import build_product
from repro.ft.mocus import MocusOptions, mocus

__all__ = ["DowntimeResult", "analyze_expected_downtime", "exact_expected_downtime"]


@dataclass(frozen=True)
class DowntimeResult:
    """Expected downtime aggregated over the minimal cutsets.

    ``expected_downtime_hours`` is the rare-event sum; ``per_cutset``
    maps each cutset to its contribution.  ``unavailability`` is the
    time-average (downtime divided by the horizon).
    """

    expected_downtime_hours: float
    horizon: float
    per_cutset: dict[frozenset, float]

    @property
    def unavailability(self) -> float:
        """Mission-average probability of being down."""
        if self.horizon <= 0.0:
            return 0.0
        return self.expected_downtime_hours / self.horizon


def analyze_expected_downtime(
    sdft: SdFaultTree, options: AnalysisOptions | None = None
) -> DowntimeResult:
    """Per-cutset expected downtime of the top event.

    A static cutset is either down for the whole mission (all its events
    failed at time 0) or never, contributing ``prod p(a) * horizon``;
    a dynamic cutset contributes its chain's downtime integral.
    """
    opts = options or AnalysisOptions()
    translation = to_static(sdft, opts.horizon)
    cutsets = mocus(
        translation.tree,
        MocusOptions(cutoff=opts.cutoff, max_partials=opts.max_partials),
    ).cutsets
    classes = classification_report(sdft).by_gate

    contributions: dict[frozenset, float] = {}
    cache: dict[tuple, float] = {}
    for cutset in cutsets:
        model = build_cutset_model(sdft, cutset, classes)
        if model.trivially_zero:
            contributions[cutset] = 0.0
            continue
        if model.model is None:
            contributions[cutset] = model.static_factor * opts.horizon
            continue
        key = _signature(model.model, opts.horizon)
        if key not in cache:
            product = build_product(model.model, max_states=opts.max_chain_states)
            cache[key] = expected_downtime(product.chain, opts.horizon)
        contributions[cutset] = cache[key] * model.static_factor
    total = sum(contributions.values())
    return DowntimeResult(total, opts.horizon, contributions)


def exact_expected_downtime(
    sdft: SdFaultTree, horizon: float, max_states: int = 200_000
) -> float:
    """Exact expected top-event downtime via the full product chain."""
    product = build_product(sdft, max_states=max_states)
    return expected_downtime(product.chain, horizon)


def _signature(model: "SdFaultTree", horizon: float) -> tuple:
    gates = tuple(
        (g.name, g.gate_type.value, g.children, g.k)
        for g in sorted(model.gates.values(), key=lambda g: g.name)
    )
    dynamic = tuple(
        (name, id(event.chain)) for name, event in sorted(model.dynamic_events.items())
    )
    static = tuple(
        (name, event.probability)
        for name, event in sorted(model.static_events.items())
    )
    triggers = tuple(sorted((g, tuple(e)) for g, e in model.triggers.items()))
    return (gates, dynamic, static, triggers, horizon)
