"""Parameter sensitivity of SD fault-tree analyses.

Importance and uncertainty analyses (paper, concluding remark) ask how
the result moves when a parameter moves.  For static events the static
machinery answers exactly (:mod:`repro.ft.importance`); dynamic events
are parameterised by *rates*, so this module provides rate sensitivity
by finite differences over the quantified cutset list:

* only cutsets containing the perturbed event are re-quantified — the
  rest of the list is reused, exactly the cheap re-evaluation the
  decomposition enables;
* the reported measure is the normalised elasticity
  ``(dP / P) / (dλ / λ)`` — how many percent the failure probability
  moves per percent of rate change — which is scale-free and comparable
  across events.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.analyzer import AnalysisOptions
from repro.core.quantify import QuantificationCache, quantify_cutset
from repro.core.results import AnalysisResult
from repro.core.sdft import SdFaultTree, SdFaultTreeBuilder
from repro.ctmc.chain import Ctmc
from repro.ctmc.triggered import TriggeredCtmc
from repro.errors import UnknownNodeError

__all__ = ["RateSensitivity", "rate_sensitivity"]


@dataclass(frozen=True)
class RateSensitivity:
    """Finite-difference sensitivity of the failure probability.

    ``elasticity`` is ``(dP/P) / (dλ/λ)``; ``perturbed_probability`` is
    the full rare-event sum with the event's rates scaled by
    ``1 + relative_step``.
    """

    event: str
    base_probability: float
    perturbed_probability: float
    relative_step: float

    @property
    def elasticity(self) -> float:
        """Percent result change per percent rate change."""
        if self.base_probability <= 0.0:
            return 0.0
        relative_change = (
            self.perturbed_probability - self.base_probability
        ) / self.base_probability
        return relative_change / self.relative_step


def rate_sensitivity(
    sdft: SdFaultTree,
    result: AnalysisResult,
    event_name: str,
    relative_step: float = 0.05,
    options: AnalysisOptions | None = None,
) -> RateSensitivity:
    """Sensitivity of ``result`` to the rates of one dynamic event.

    Scales *all* transition rates of the event's chain by
    ``1 + relative_step`` (failure and repair alike — the chain is the
    parameter object; to study failure rates alone, build a perturbed
    chain explicitly and swap it in).  Only the cutsets containing the
    event are re-quantified.
    """
    if event_name not in sdft.dynamic_events:
        raise UnknownNodeError(
            f"{event_name!r} is not a dynamic basic event of the model"
        )
    opts = options or AnalysisOptions(horizon=result.horizon, cutoff=result.cutoff)
    perturbed = _with_scaled_rates(sdft, event_name, 1.0 + relative_step)

    cache = QuantificationCache()
    total = 0.0
    for record in result.records:
        if event_name not in record.cutset:
            if record.probability > result.cutoff:
                total += record.probability
            continue
        requantified = quantify_cutset(
            perturbed,
            record.cutset,
            result.horizon,
            cache=cache,
            epsilon=opts.epsilon,
            max_chain_states=opts.max_chain_states,
            on_oversize=opts.on_oversize,
        )
        if requantified.probability > result.cutoff:
            total += requantified.probability
    return RateSensitivity(
        event_name, result.failure_probability, total, relative_step
    )


def _with_scaled_rates(
    sdft: SdFaultTree, event_name: str, factor: float
) -> SdFaultTree:
    """A copy of the model with one event's chain rates scaled."""
    original = sdft.dynamic_events[event_name].chain
    scaled_rates = {
        transition: rate * factor for transition, rate in original.rates.items()
    }
    if isinstance(original, TriggeredCtmc):
        scaled: Ctmc = TriggeredCtmc(
            original.states,
            original.initial,
            scaled_rates,
            original.failed,
            original.on_states,
            original.switch_on,
            original.switch_off,
        )
    else:
        scaled = Ctmc(
            original.states, original.initial, scaled_rates, original.failed
        )

    b = SdFaultTreeBuilder(f"{sdft.name}#sens-{event_name}")
    for event in sdft.static_events.values():
        b.static_event(event.name, event.probability, event.description)
    for event in sdft.dynamic_events.values():
        chain = scaled if event.name == event_name else event.chain
        b.dynamic_event(event.name, chain, event.description)
    for gate in sdft.gates.values():
        b.gate(gate.name, gate.gate_type, gate.children, gate.k, gate.description)
    for gate_name, events in sdft.triggers.items():
        b.trigger(gate_name, *events)
    return b.build(sdft.top)
