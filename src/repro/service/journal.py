"""The crash-safe session journal of the analysis daemon.

Append-only JSONL: every state-changing request is journalled *before*
it executes (``begin``) and again after its response was committed
(``done``).  Each line carries a CRC-32 of its canonical payload, so a
restarted daemon can tell three situations apart:

- **Clean records** — replayed: ``begin``/``done`` pairs rebuild the
  model store (loads and edits are re-applied; analyses are not re-run
  — their values live in the persistent solve cache).
- **A torn final line** (no newline, truncated JSON, or a CRC mismatch
  on the *last* record) — the expected artifact of a crash mid-write:
  tolerated, reported as a recovery note, treated as in-flight.
- **A corrupt interior record** — the journal cannot be trusted;
  :class:`~repro.errors.JournalError` is raised instead of replaying a
  guess.  Never silent.

A ``begin`` without a matching ``done`` marks an in-flight request at
crash time; replay reports it so the daemon can cleanly abort it (the
client re-issues; re-execution is safe because journalled operations
are deterministic and content-addressed).
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass, field
from typing import IO

from repro.errors import JournalError

__all__ = ["Journal", "JournalRecord", "JournalReplay", "replay_journal"]

_FORMAT_VERSION = 1


def _crc(payload: dict) -> int:
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return zlib.crc32(canonical.encode("utf-8")) & 0xFFFFFFFF


@dataclass(frozen=True)
class JournalRecord:
    """One journalled lifecycle event."""

    seq: int
    state: str  # "begin" | "done"
    request: dict


@dataclass
class JournalReplay:
    """What a restarted daemon learns from its journal."""

    completed: list[JournalRecord] = field(default_factory=list)
    in_flight: list[JournalRecord] = field(default_factory=list)
    torn_tail: bool = False
    notes: list[str] = field(default_factory=list)


class Journal:
    """Append-only CRC-checked JSONL journal (one daemon, one file)."""

    def __init__(self, path: str) -> None:
        self.path = path
        self._seq = 0
        self._file: IO[str] | None = None

    def _open(self) -> IO[str]:
        if self._file is None:
            directory = os.path.dirname(os.path.abspath(self.path))
            os.makedirs(directory, exist_ok=True)
            self._file = open(self.path, "a", encoding="utf-8")
        return self._file

    def next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def restore_seq(self, seq: int) -> None:
        """Continue numbering after a replay."""
        self._seq = max(self._seq, seq)

    def begin(self, seq: int, request: dict) -> None:
        self._write({"seq": seq, "state": "begin", "request": request})

    def done(self, seq: int) -> None:
        self._write({"seq": seq, "state": "done", "request": {}})

    def _write(self, payload: dict) -> None:
        payload = {"v": _FORMAT_VERSION, **payload}
        record = {**payload, "crc": _crc(payload)}
        handle = self._open()
        handle.write(json.dumps(record, sort_keys=True) + "\n")
        handle.flush()
        os.fsync(handle.fileno())

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None


def replay_journal(path: str) -> JournalReplay:
    """Parse a journal, classifying records (see module docstring).

    Raises :class:`~repro.errors.JournalError` on interior corruption;
    a missing file replays as empty (a fresh daemon).
    """
    replay = JournalReplay()
    if not os.path.exists(path):
        return replay
    with open(path, "r", encoding="utf-8", errors="replace") as handle:
        lines = handle.read().split("\n")
    if lines and lines[-1] == "":
        lines.pop()
    begun: dict[int, JournalRecord] = {}
    last = len(lines) - 1
    for index, line in enumerate(lines):
        record = _parse(line)
        if record is None:
            if index == last:
                # The expected crash artifact: a write torn mid-line.
                replay.torn_tail = True
                replay.notes.append(
                    "journal ends in a torn record (crash artifact); "
                    "record discarded"
                )
                break
            raise JournalError(
                f"journal {path} is corrupt at line {index + 1} (not at "
                f"the tail); refusing to replay"
            )
        if record.state == "begin":
            begun[record.seq] = record
        elif record.state == "done":
            done_of = begun.pop(record.seq, None)
            if done_of is None:
                raise JournalError(
                    f"journal {path}: 'done' for seq {record.seq} without "
                    f"a 'begin'; refusing to replay"
                )
            replay.completed.append(done_of)
        else:
            raise JournalError(
                f"journal {path}: unknown record state {record.state!r}"
            )
    replay.in_flight = [begun[seq] for seq in sorted(begun)]
    for record in replay.in_flight:
        replay.notes.append(
            f"request seq {record.seq} "
            f"({record.request.get('op', '?')}) was in flight at crash "
            f"time; cleanly aborted (re-issue to complete)"
        )
    return replay


def _parse(line: str) -> JournalRecord | None:
    """One journal line, or ``None`` when it is torn/corrupt."""
    try:
        raw = json.loads(line)
    except ValueError:
        return None
    if not isinstance(raw, dict) or "crc" not in raw:
        return None
    crc = raw.pop("crc")
    if not isinstance(crc, int) or _crc(raw) != crc:
        return None
    try:
        return JournalRecord(
            seq=int(raw["seq"]),
            state=str(raw["state"]),
            request=dict(raw.get("request") or {}),
        )
    except (KeyError, TypeError, ValueError):
        return None
