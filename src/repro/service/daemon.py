"""The stdio-JSONL analysis daemon behind ``sdft serve``.

One JSON object per line in, one JSON response object per line out
(responses carry the request ``id`` and may interleave across
requests).  Operations:

``load``        install a model (inline dict or ``path``) → session id
``analyze``     full analysis of a session's current model
``edit``        apply what-if edits to a session's model
``reanalyze``   incremental re-analysis (see :mod:`repro.service.session`)
``stats``       daemon + per-session counters
``ping``        liveness probe (never queued, answers even under load)
``shutdown``    drain and exit

Robustness contract:

- **Deadlines** (``deadline_seconds`` on analyze/reanalyze) become
  cooperative budgets: an expired request returns ``ok: true`` with
  the served ``method`` and a sound probability ``interval`` (invariant
  checked under ``verify≥cheap``) — never an error.
- **Admission control**: analysis requests queue into a bounded queue;
  when it is full the daemon answers immediately with an explicit
  ``load-shed`` error response instead of accepting work it cannot
  serve.  ``ping``/``stats``/``shutdown`` bypass the queue.
- **Circuit breaker**: runs whose health reports pool breakage count
  as failures; after ``failure_threshold`` consecutive ones the daemon
  serves requests serially (``jobs=1``) for a cooldown, noting it in
  each response.
- **Journal**: state-changing requests are journalled begin/done
  (:mod:`repro.service.journal`); a restarted daemon replays completed
  loads/edits and cleanly aborts in-flight work, reporting both via
  ``stats`` and the startup banner on stderr.

``REPRO_SERVICE_KILL_AFTER=<hook>:<op>`` (hook ``journal_begin``) is a
test/chaos hook: the daemon SIGKILLs itself right after writing the
``begin`` journal record of the first matching operation — simulating
a crash between journal write and cache commit.
"""

from __future__ import annotations

import json
import os
import queue
import signal
import sys
import threading
import time
from dataclasses import replace
from typing import IO

from repro.core.analyzer import AnalysisOptions
from repro.errors import ReproError, ServiceError
from repro.core.sdft import SdFaultTree
from repro.models.formats import load_model, sdft_from_dict
from repro.service.breaker import CircuitBreaker
from repro.service.edits import edit_from_dict
from repro.service.journal import Journal, replay_journal
from repro.service.store import ModelStore

__all__ = ["ServiceDaemon"]

#: Operations that mutate daemon state and therefore get journalled.
_JOURNALLED_OPS = frozenset({"load", "edit", "analyze", "reanalyze"})
#: Operations replayed from the journal on restart (deterministic,
#: content-addressed; analyses are not re-run — their values live in
#: the persistent solve cache and are recomputed on demand).
_REPLAYED_OPS = frozenset({"load", "edit"})


class ServiceDaemon:
    """One daemon process: a model store plus the request machinery."""

    def __init__(
        self,
        options: AnalysisOptions | None = None,
        journal_path: str | None = None,
        max_queue: int = 16,
        workers: int = 1,
        trace_path: str | None = None,
        breaker: CircuitBreaker | None = None,
    ) -> None:
        if max_queue < 1:
            raise ValueError("max_queue must be >= 1")
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.store = ModelStore(options)
        self.journal = Journal(journal_path) if journal_path else None
        self.max_queue = max_queue
        self.workers = workers
        self.trace_path = trace_path
        self.breaker = breaker or CircuitBreaker()
        self.recovery_notes: list[str] = []
        self.counters = {
            "requests": 0,
            "served": 0,
            "shed": 0,
            "errors": 0,
            "deadline_partials": 0,
            "replayed": 0,
            "aborted_in_flight": 0,
        }
        self._trace_lock = threading.Lock()
        self._counter_lock = threading.Lock()
        self._kill_hook = os.environ.get("REPRO_SERVICE_KILL_AFTER", "")
        self._kill_fired = False
        if journal_path:
            self._recover(journal_path)

    # ------------------------------------------------------------------
    # Crash recovery
    # ------------------------------------------------------------------

    def _recover(self, journal_path: str) -> None:
        """Replay the journal (raises ``JournalError`` on corruption)."""
        replay = replay_journal(journal_path)
        self.recovery_notes.extend(replay.notes)
        top_seq = 0
        for record in replay.completed:
            top_seq = max(top_seq, record.seq)
            if record.request.get("op") not in _REPLAYED_OPS:
                continue
            try:
                self._execute(dict(record.request))
                self._count("replayed")
            except ReproError as error:
                self.recovery_notes.append(
                    f"replay of seq {record.seq} failed: {error}"
                )
        for record in replay.in_flight:
            top_seq = max(top_seq, record.seq)
            self._count("aborted_in_flight")
        if self.journal is not None:
            self.journal.restore_seq(top_seq)

    # ------------------------------------------------------------------
    # Request handling (synchronous core)
    # ------------------------------------------------------------------

    def handle_request(self, request: dict) -> dict:
        """Execute one request object and build its response object.

        Journals state-changing operations around execution; converts
        :class:`ReproError` into an error response (other exceptions
        are daemon bugs and surface as ``kind: "internal"``).
        """
        self._count("requests")
        request_id = request.get("id")
        op = str(request.get("op", ""))
        seq = None
        if self.journal is not None and op in _JOURNALLED_OPS:
            seq = self.journal.next_seq()
            self.journal.begin(seq, request)
            self._maybe_kill("journal_begin", op)
        try:
            response = self._execute(request)
        except ServiceError as error:
            self._count("errors")
            response = _error("service-error", str(error))
        except ReproError as error:
            self._count("errors")
            response = _error(type(error).__name__, str(error))
        except Exception as error:  # noqa: BLE001 - daemon must not die
            self._count("errors")
            response = _error("internal", f"{type(error).__name__}: {error}")
        else:
            self._count("served")
        if request_id is not None:
            response["id"] = request_id
        if self.journal is not None and seq is not None and response.get("ok"):
            self.journal.done(seq)
        self._trace(request, response)
        return response

    def _execute(self, request: dict) -> dict:
        op = str(request.get("op", ""))
        if op == "ping":
            return {"ok": True, "op": "ping"}
        if op == "stats":
            return self._stats_response()
        if op == "load":
            return self._do_load(request)
        if op in ("analyze", "reanalyze"):
            return self._do_analysis(request, op)
        if op == "edit":
            return self._do_edit(request)
        raise ServiceError(f"unknown operation {op!r}")

    def _do_load(self, request: dict) -> dict:
        if "model" in request:
            data = request["model"]
            if isinstance(data, dict) and data.get("kind") == "fault-tree":
                from repro.models.formats import tree_from_dict

                model = tree_from_dict(data)
            else:
                model = sdft_from_dict(data)
        elif "path" in request:
            model = load_model(str(request["path"]))
        else:
            raise ServiceError("load needs 'model' (inline) or 'path'")
        if not isinstance(model, SdFaultTree):
            raise ServiceError(
                "the service analyzes SD fault trees; got a static model"
            )
        session_id, session = self.store.load(model)
        return {
            "ok": True,
            "op": "load",
            "session": session_id,
            "fingerprint": session.fingerprint,
            "model": getattr(model, "name", ""),
        }

    def _do_edit(self, request: dict) -> dict:
        session_id = str(request.get("session", ""))
        raw = request.get("edits")
        if not raw or not isinstance(raw, list):
            raise ServiceError("edit needs a non-empty 'edits' list")
        edits = [edit_from_dict(item) for item in raw]
        with self.store.guard(session_id) as session:
            report = session.edit(*edits)
        return {
            "ok": True,
            "op": "edit",
            "session": session_id,
            "applied": len(edits),
            "fingerprint_before": report.fingerprint_before,
            "fingerprint_after": report.fingerprint_after,
            "changed": report.changed,
        }

    def _do_analysis(self, request: dict, op: str) -> dict:
        session_id = str(request.get("session", ""))
        deadline = request.get("deadline_seconds")
        deadline = None if deadline is None else float(deadline)
        crosscheck = bool(request.get("crosscheck", False))
        notes: list[str] = []
        pool_allowed = self.breaker.allows_pool()
        with self.store.guard(session_id) as session:
            saved_options = session.options
            if not pool_allowed:
                session.options = replace(saved_options, jobs=1)
                notes.append(
                    "circuit breaker open: request served serially "
                    "(jobs=1) while the pool cools down"
                )
            try:
                if op == "analyze":
                    result = session.analyze(deadline_seconds=deadline)
                else:
                    result = session.reanalyze(
                        deadline_seconds=deadline, crosscheck=crosscheck
                    )
            finally:
                session.options = saved_options
            mode = session.last_mode
            fingerprint = session.fingerprint
        pool_broke = any(
            event.stage == "pool" and event.kind not in ("info",)
            for event in result.health.events
        )
        if pool_allowed:
            if pool_broke:
                self.breaker.record_failure()
            else:
                self.breaker.record_success()
        deadline_expired = any(
            event.kind == "budget" for event in result.health.events
        )
        if deadline_expired:
            self._count("deadline_partials")
        interval = result.failure_probability_interval()
        return {
            "ok": True,
            "op": op,
            "session": session_id,
            "fingerprint": fingerprint,
            "probability": result.failure_probability,
            "interval": [interval[0], interval[1]],
            "method": result.method,
            "mode": mode,
            "n_cutsets": len(result.records),
            "degraded": result.is_degraded,
            "deadline_expired": deadline_expired,
            "verified": result.health.is_clean or None,
            "breaker": self.breaker.state,
            "notes": notes
            + [
                f"{event.kind}@{event.stage}: {event.message}"
                for event in result.health.events
                if event.kind not in ("info",)
            ],
        }

    def _stats_response(self) -> dict:
        with self._counter_lock:
            counters = dict(self.counters)
        return {
            "ok": True,
            "op": "stats",
            "counters": counters,
            "breaker": {
                "state": self.breaker.state,
                "trips": self.breaker.trips,
            },
            "sessions": {
                session_id: self.store.get(session_id).stats()
                for session_id in self.store.ids()
            },
            "recovery_notes": list(self.recovery_notes),
        }

    # ------------------------------------------------------------------
    # The stdio serve loop
    # ------------------------------------------------------------------

    def serve(
        self, stdin: "IO[str] | None" = None, stdout: "IO[str] | None" = None
    ) -> int:
        """Serve JSONL requests until EOF or ``shutdown``."""
        stdin = stdin if stdin is not None else sys.stdin
        stdout = stdout if stdout is not None else sys.stdout
        out_lock = threading.Lock()
        work: "queue.Queue[dict | None]" = queue.Queue(maxsize=self.max_queue)
        stop = threading.Event()

        def emit(response: dict) -> None:
            with out_lock:
                stdout.write(json.dumps(response) + "\n")
                stdout.flush()

        def worker() -> None:
            while True:
                item = work.get()
                try:
                    if item is None:
                        return
                    emit(self.handle_request(item))
                finally:
                    work.task_done()

        threads = [
            threading.Thread(target=worker, daemon=True, name=f"svc-{i}")
            for i in range(self.workers)
        ]
        for thread in threads:
            thread.start()

        if self.recovery_notes:
            for note in self.recovery_notes:
                print(f"sdft serve: {note}", file=sys.stderr)

        for line in stdin:
            line = line.strip()
            if not line:
                continue
            try:
                request = json.loads(line)
                if not isinstance(request, dict):
                    raise ValueError("request must be a JSON object")
            except ValueError as error:
                self._count("errors")
                emit(_error("bad-request", f"unparseable request: {error}"))
                continue
            op = request.get("op")
            if op in ("ping", "stats"):
                # Health checks must answer even when the queue is full.
                emit(self.handle_request(request))
                continue
            if op == "shutdown":
                response = {"ok": True, "op": "shutdown"}
                if request.get("id") is not None:
                    response["id"] = request["id"]
                emit(response)
                stop.set()
                break
            try:
                work.put_nowait(request)
            except queue.Full:
                self._count("shed")
                shed = _error(
                    "load-shed",
                    f"request queue full ({self.max_queue}); retry later",
                )
                if request.get("id") is not None:
                    shed["id"] = request["id"]
                emit(shed)

        work.join()
        for _ in threads:
            work.put(None)
        for thread in threads:
            thread.join(timeout=5.0)
        if self.journal is not None:
            self.journal.close()
        return 0

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _count(self, name: str) -> None:
        with self._counter_lock:
            self.counters[name] += 1

    def _trace(self, request: dict, response: dict) -> None:
        if not self.trace_path:
            return
        entry = {
            "ts": time.time(),
            "id": request.get("id"),
            "op": request.get("op"),
            "session": request.get("session") or response.get("session"),
            "ok": response.get("ok", False),
            "error": (response.get("error") or {}).get("kind"),
            "probability": response.get("probability"),
            "mode": response.get("mode"),
            "deadline_expired": response.get("deadline_expired"),
        }
        with self._trace_lock:
            with open(self.trace_path, "a", encoding="utf-8") as handle:
                handle.write(json.dumps(entry) + "\n")

    def _maybe_kill(self, hook: str, op: str) -> None:
        """The chaos/test crash hook (see module docstring)."""
        if self._kill_fired or not self._kill_hook:
            return
        want = self._kill_hook.split(":", 1)
        want_hook = want[0]
        want_op = want[1] if len(want) > 1 else ""
        if want_hook != hook or (want_op and want_op != op):
            return
        self._kill_fired = True
        os.kill(os.getpid(), signal.SIGKILL)


def _error(kind: str, message: str) -> dict:
    return {"ok": False, "error": {"kind": kind, "message": message}}
