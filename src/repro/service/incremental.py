"""Incremental minimal-cutset generation for the what-if engine.

A cold MOCUS run with probabilistic cutoff ``c*`` produces exactly the
minimal cutsets of the translated tree whose probability exceeds ``c*``
(in-search pruning is conservative: a partial's probability product only
shrinks as events are added, so every above-cutoff minimal cutset
survives the search).  Anything that reproduces *that set* and then goes
through the same ``CutSetList.from_cutsets(...)`` + ``truncate(cutoff)``
construction the analyzer's warm-cache path uses is element-for-element
what a cold search would have returned.

Two incremental strategies exploit this, in order of preference:

1. **Re-truncate** — when the edit left the gate structure untouched and
   no event probability *increased*, the previous run's pre-truncation
   family already contains every cutset that can be above the cutoff now
   (probabilities only fell), so re-truncating it locally is exact and
   skips the search entirely.

2. **Modular recomposition** — otherwise, decompose the tree into its
   maximal independent modules (Dutuit–Rauzy, :mod:`repro.ft.modules`).
   Because all probability factors are ``≤ 1``, every whole-tree cutset
   above ``c*`` projects onto each module as a module cutset above
   ``c*`` — so per-module families are computable by a plain
   ``mocus(subtree(M))`` at the *same* cutoff, and are content-addressed
   by the module subtree digest: an edit inside one module recomputes
   only that family.  A small *context tree* (each module gate collapsed
   to a basic event at its family's maximum cutset probability — an
   upper bound, so context pruning stays conservative) is re-searched
   every time, and the whole-tree family is the bound-pruned
   cross-product of context cutsets with module families.  For coherent
   AND/OR/ATLEAST trees this composition yields exactly the minimal
   cutsets of the whole tree.

Both paths end in the same canonical membership test the cold search
uses (``cutset_probability(C) > cutoff`` with a single fixed
multiplication order; see ``_CUTOFF_SLACK`` in :mod:`repro.ft.mocus`),
and all intermediate bound-pruning here carries the same ULP slack —
so boundary-straddling cutsets resolve identically warm and cold.  A
probability parked *exactly on* the cutoff is still a single-rounding
coin flip; don't do that.

When neither strategy applies (module search overflow, overlapping
module report, oversized cross-product) the caller falls back to a full
MOCUS run; the fallback is always sound, never silent.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterable

from repro.errors import CutoffError
from repro.ft.cutsets import CutSetList, cutset_probability
from repro.ft.mocus import (
    _CUTOFF_SLACK,
    MocusOptions,
    MocusResult,
    MocusStats,
    mocus,
)
from repro.ft.modules import find_modules
from repro.ft.tree import BasicEvent, FaultTree
from repro.perf.cache import tree_digest

__all__ = [
    "FamilyCache",
    "IncrementalStats",
    "ModuleFamily",
    "incremental_cutsets",
]


@dataclass(frozen=True)
class ModuleFamily:
    """The above-cutoff minimal cutsets of one module subtree.

    ``cutsets`` are sorted name tuples (the pre-truncation family of a
    completed module search); ``max_probability`` is the largest cutset
    probability under the subtree's own event probabilities — the upper
    bound the context tree substitutes for the module.
    """

    cutsets: tuple[tuple[str, ...], ...]
    max_probability: float


@dataclass
class IncrementalStats:
    """What the incremental engine did for one re-analysis."""

    mode: str = "full"
    modules_total: int = 0
    modules_reused: int = 0
    modules_recomputed: int = 0
    context_cutsets: int = 0
    composed_cutsets: int = 0

    def summary(self) -> str:
        if self.mode == "retruncate":
            return (
                "incremental: structure unchanged, probabilities "
                "non-increasing; previous family re-truncated "
                f"({self.composed_cutsets} cutsets, search skipped)"
            )
        if self.mode == "modular":
            return (
                f"incremental: {self.modules_reused}/{self.modules_total} "
                f"module families reused, {self.modules_recomputed} "
                f"recomputed; {self.context_cutsets} context cutsets "
                f"composed into {self.composed_cutsets}"
            )
        return "incremental: fell back to a full MOCUS search"


class FamilyCache:
    """Content-addressed module families with LRU eviction.

    Keys cover the module subtree digest (structure *and* event
    probabilities) plus the search options, so a stale family can never
    be served after an edit that touches the module.
    """

    def __init__(self, max_entries: int = 512) -> None:
        self.max_entries = max_entries
        self._store: "OrderedDict[tuple, ModuleFamily]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._store)

    def get(self, key: tuple) -> ModuleFamily | None:
        family = self._store.get(key)
        if family is None:
            self.misses += 1
            return None
        self._store.move_to_end(key)
        self.hits += 1
        return family

    def put(self, key: tuple, family: ModuleFamily) -> None:
        self._store[key] = family
        self._store.move_to_end(key)
        while len(self._store) > self.max_entries:
            self._store.popitem(last=False)


def _structure_key(tree: FaultTree) -> tuple:
    """Everything MOCUS output depends on except event probabilities."""
    return (
        tree.top,
        frozenset(tree.events),
        tuple(
            sorted(
                (name, gate.gate_type.value, gate.children, gate.k)
                for name, gate in tree.gates.items()
            )
        ),
    )


def _non_increasing(new_tree: FaultTree, previous_tree: FaultTree) -> bool:
    previous = {
        name: event.probability for name, event in previous_tree.events.items()
    }
    return all(
        event.probability <= previous[name]
        for name, event in new_tree.events.items()
    )


def _result_from_family(
    family: Iterable[Iterable[str]], tree: FaultTree, cutoff: float
) -> MocusResult:
    """Mirror the analyzer's warm-cache construction exactly.

    ``family`` must be a *minimal* family; probabilities are taken from
    ``tree`` and the final truncation applies the analyzer's rule
    (``p > cutoff`` when the cutoff is positive).
    """
    probabilities = {
        name: event.probability for name, event in tree.events.items()
    }
    pre = CutSetList.from_cutsets(
        [frozenset(cutset) for cutset in family], probabilities, minimal=True
    )
    cutsets = pre.truncate(cutoff) if cutoff > 0.0 else pre
    full = tuple(sorted(tuple(sorted(cutset)) for cutset in pre))
    stats = MocusStats(completed=len(pre), minimal=len(pre))
    return MocusResult(cutsets, stats=stats, full_cutsets=full)


def _complete_family(result: MocusResult) -> tuple[tuple[str, ...], ...]:
    """The pre-truncation family of a completed (un-truncated) search."""
    if result.full_cutsets:
        return result.full_cutsets
    return tuple(sorted(tuple(sorted(cutset)) for cutset in result.cutsets))


def incremental_cutsets(
    tree: FaultTree,
    options: MocusOptions,
    families: FamilyCache,
    previous_tree: FaultTree | None = None,
    previous_family: tuple[tuple[str, ...], ...] = (),
) -> tuple[MocusResult, IncrementalStats] | None:
    """Generate the cutsets of ``tree`` reusing previous work.

    Returns ``None`` when no incremental strategy applies — the caller
    must then run a full MOCUS search (cold behaviour).  On success the
    returned :class:`MocusResult` is element-for-element what a cold
    search of ``tree`` would produce (modulo the documented cutoff
    float-boundary caveat), with ``full_cutsets`` populated so the next
    edit can take the re-truncate fast path.
    """
    if (
        previous_tree is not None
        and previous_family
        and _structure_key(tree) == _structure_key(previous_tree)
        and _non_increasing(tree, previous_tree)
    ):
        result = _result_from_family(previous_family, tree, options.cutoff)
        stats = IncrementalStats(
            mode="retruncate", composed_cutsets=len(result.cutsets)
        )
        return result, stats
    try:
        return _modular(tree, options, families)
    except CutoffError:
        # A module or context search overflowed its partials limit;
        # let the cold pipeline handle (and report) the blow-up.
        return None


def _modular(
    tree: FaultTree, options: MocusOptions, families: FamilyCache
) -> tuple[MocusResult, IncrementalStats] | None:
    stats = IncrementalStats(mode="modular")
    reach = tree.reachable_from_top()
    report = find_modules(tree)
    chosen = [
        name for name in report.maximal if name in reach and name != tree.top
    ]
    stats.modules_total = len(chosen)

    # Maximal modules are pairwise disjoint for well-formed trees; if the
    # report ever says otherwise, collapsing them would double-count —
    # bail out to the full search instead of risking a wrong answer.
    covered_gates: set[str] = set()
    covered_events: set[str] = set()
    total_nodes = 0
    for name in chosen:
        gates = tree.gates_under(name)
        events = tree.events_under(name)
        total_nodes += len(gates) + len(events)
        covered_gates |= gates
        covered_events |= events
    if total_nodes != len(covered_gates) + len(covered_events):
        return None

    family_by_module: dict[str, ModuleFamily] = {}
    for name in chosen:
        subtree = tree.subtree(name)
        key = (tree_digest(subtree), repr(options.cutoff), options.max_partials)
        family = families.get(key)
        if family is None:
            result = mocus(subtree, options)
            if result.truncated:  # pragma: no cover - no budget in play
                return None
            cutsets = _complete_family(result)
            probabilities = {
                n: event.probability for n, event in subtree.events.items()
            }
            max_probability = max(
                (
                    cutset_probability(frozenset(c), probabilities)
                    for c in cutsets
                ),
                default=0.0,
            )
            family = ModuleFamily(cutsets, max_probability)
            families.put(key, family)
            stats.modules_recomputed += 1
        else:
            stats.modules_reused += 1
        family_by_module[name] = family

    context_events = [
        event
        for name, event in tree.events.items()
        if name in reach and name not in covered_events
    ]
    context_events += [
        BasicEvent(name, family_by_module[name].max_probability)
        for name in chosen
    ]
    context_gates = [
        gate
        for name, gate in tree.gates.items()
        if name in reach and name not in covered_gates
    ]
    context = FaultTree(
        tree.top, context_events, context_gates, name=f"{tree.name}#context"
    )
    context_result = mocus(context, options)
    if context_result.truncated:  # pragma: no cover - no budget in play
        return None
    context_family = _complete_family(context_result)
    stats.context_cutsets = len(context_family)

    composed = _compose(
        tree, context_family, family_by_module, set(chosen), options
    )
    if composed is None:
        return None
    stats.composed_cutsets = len(composed)
    # The composition of minimal context cutsets with minimal module
    # families is minimal for disjoint modules (each composed set
    # uniquely determines its context cutset and module selections), so
    # `minimal=False` only re-checks what the theorem guarantees — cheap
    # insurance against a bad module report.
    probabilities = {
        name: event.probability for name, event in tree.events.items()
    }
    pre = CutSetList.from_cutsets(composed, probabilities, minimal=False)
    cutsets = pre.truncate(options.cutoff) if options.cutoff > 0.0 else pre
    full = tuple(sorted(tuple(sorted(cutset)) for cutset in pre))
    mocus_stats = MocusStats(completed=len(composed), minimal=len(pre))
    return MocusResult(cutsets, stats=mocus_stats, full_cutsets=full), stats


def _compose(
    tree: FaultTree,
    context_family: tuple[tuple[str, ...], ...],
    family_by_module: dict[str, ModuleFamily],
    chosen: set[str],
    options: MocusOptions,
) -> list[frozenset[str]] | None:
    """Bound-pruned cross-product expansion of context cutsets.

    Pruning discards a branch only when the *maximum possible* completed
    probability is at or below the cutoff — every discarded composition
    would have been pruned (or truncated) by the cold search too.
    """
    probabilities = {
        name: event.probability for name, event in tree.events.items()
    }
    use_cutoff = options.cutoff > 0.0
    cutoff = options.cutoff
    expansions: dict[str, list[tuple[tuple[str, ...], float]]] = {}
    for name, family in family_by_module.items():
        selections = [
            (cutset, cutset_probability(frozenset(cutset), probabilities))
            for cutset in family.cutsets
        ]
        selections.sort(key=lambda item: (-item[1], item[0]))
        expansions[name] = selections

    composed: list[frozenset[str]] = []
    overflow = False

    def expand(
        modules: list[str],
        suffix: list[float],
        index: int,
        events: list[str],
        probability: float,
    ) -> None:
        nonlocal overflow
        if overflow or (
            use_cutoff
            and probability * suffix[index] * _CUTOFF_SLACK <= cutoff
        ):
            return
        if index == len(modules):
            composed.append(frozenset(events))
            if len(composed) > options.max_cutsets:
                overflow = True
            return
        for selection, p_selection in expansions[modules[index]]:
            if (
                use_cutoff
                and probability * p_selection * suffix[index + 1] * _CUTOFF_SLACK
                <= cutoff
            ):
                # Selections are sorted by descending probability: every
                # later selection bounds out too.
                break
            expand(
                modules,
                suffix,
                index + 1,
                events + list(selection),
                probability * p_selection,
            )

    for context_cutset in context_family:
        base = [name for name in context_cutset if name not in chosen]
        modules = [name for name in context_cutset if name in chosen]
        probability = 1.0
        for name in base:
            probability *= probabilities[name]
        suffix = [1.0] * (len(modules) + 1)
        for i in range(len(modules) - 1, -1, -1):
            suffix[i] = (
                suffix[i + 1] * family_by_module[modules[i]].max_probability
            )
        expand(modules, suffix, 0, base, probability)
        if overflow:
            return None
    return composed
