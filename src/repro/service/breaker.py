"""A circuit breaker around the warm solver farm.

Repeated pool breakage (rebuilds, timeouts, quarantines surfaced as
``pool`` warnings in run health) trips the breaker; while it is open,
the daemon forces ``jobs=1`` so requests are served through the serial
in-process path — slower, but immune to whatever is killing workers —
and every response carries a health note saying so.  After a
deterministic cooldown (counted in requests, not wall-clock, so tests
and chaos campaigns are reproducible) the breaker half-opens: the next
request may use the pool again, and its outcome closes or re-opens the
circuit.
"""

from __future__ import annotations

__all__ = ["CircuitBreaker"]


class CircuitBreaker:
    """Deterministic failure-count breaker (closed → open → half-open)."""

    def __init__(
        self, failure_threshold: int = 3, cooldown_requests: int = 5
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if cooldown_requests < 1:
            raise ValueError("cooldown_requests must be >= 1")
        self.failure_threshold = failure_threshold
        self.cooldown_requests = cooldown_requests
        self.consecutive_failures = 0
        self.trips = 0
        self._cooldown_left = 0

    @property
    def state(self) -> str:
        if self._cooldown_left > 1:
            return "open"
        if self._cooldown_left == 1:
            return "half-open"
        return "closed"

    def allows_pool(self) -> bool:
        """Whether the next request may use the process pool.

        Counts down the cooldown: while open, each denied request moves
        the breaker closer to half-open (where one probe request is let
        through to the pool).
        """
        if self._cooldown_left > 1:
            self._cooldown_left -= 1
            return False
        return True

    def record_failure(self) -> None:
        """A pool-degraded run (breakage warnings in its health)."""
        self.consecutive_failures += 1
        if self.consecutive_failures >= self.failure_threshold:
            self.trips += 1
            self.consecutive_failures = 0
            self._cooldown_left = self.cooldown_requests + 1
            # +1: the countdown passes through "half-open" (== 1)
            # before closing.

    def record_success(self) -> None:
        """A clean pool run: close the circuit."""
        self.consecutive_failures = 0
        self._cooldown_left = 0
