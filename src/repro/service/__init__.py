"""Analysis-as-a-service: sessions, incremental re-analysis, request layer.

The one-shot :func:`repro.core.analyzer.analyze` pipeline becomes a
long-running system here:

- :class:`~repro.service.session.AnalysisSession` owns a model, its
  options, the warm farm handle and per-stage checkpoints, and supports
  start / interrupt / resume / **edit** mid-lifecycle.
- :mod:`repro.service.incremental` re-runs MOCUS only on modules whose
  content fingerprint changed and re-quantifies only cutsets whose FT_C
  fingerprint changed (see ``docs/service.md`` for the soundness
  argument).
- :mod:`repro.service.daemon` is the stdio-JSONL request layer behind
  ``sdft serve``: per-request deadlines become cooperative budgets,
  overload sheds load explicitly, and a CRC-checked journal makes a
  killed daemon restartable without silent corruption.
"""

from repro.service.breaker import CircuitBreaker
from repro.service.daemon import ServiceDaemon
from repro.service.edits import (
    Edit,
    RemoveTrigger,
    ScaleRates,
    SetGate,
    SetProbability,
    SetTrigger,
    apply_edits,
    edit_from_dict,
    edit_to_dict,
)
from repro.service.journal import Journal, JournalReplay, replay_journal
from repro.service.session import AnalysisSession, EditReport
from repro.service.store import ModelStore

__all__ = [
    "AnalysisSession",
    "CircuitBreaker",
    "Edit",
    "EditReport",
    "Journal",
    "JournalReplay",
    "ModelStore",
    "RemoveTrigger",
    "ScaleRates",
    "ServiceDaemon",
    "SetGate",
    "SetProbability",
    "SetTrigger",
    "apply_edits",
    "edit_from_dict",
    "edit_to_dict",
    "replay_journal",
]
