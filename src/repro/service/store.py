"""The fingerprint-addressed model store behind the daemon.

Sessions are addressed by the content fingerprint of the model they
were *loaded* with (:func:`repro.robust.checkpoint.model_fingerprint`,
truncated for ergonomics): loading the same model twice converges on
the same session instead of duplicating state, and a session id in a
journal or request trace identifies exactly one model content.  Edits
move the session's *current* fingerprint away from its address — both
appear in responses.
"""

from __future__ import annotations

import threading

from repro.core.analyzer import AnalysisOptions
from repro.core.sdft import SdFaultTree
from repro.errors import ServiceError
from repro.robust.checkpoint import model_fingerprint
from repro.service.session import AnalysisSession

__all__ = ["ModelStore"]

#: Hex digits of the full model fingerprint used as the session id.
_ID_LENGTH = 12


class ModelStore:
    """Thread-safe map from session id to :class:`AnalysisSession`."""

    def __init__(self, options: AnalysisOptions | None = None) -> None:
        self.options = options or AnalysisOptions()
        self._sessions: dict[str, AnalysisSession] = {}
        self._locks: dict[str, threading.Lock] = {}
        self._mutex = threading.Lock()

    def __len__(self) -> int:
        with self._mutex:
            return len(self._sessions)

    def ids(self) -> list[str]:
        with self._mutex:
            return sorted(self._sessions)

    def load(self, model: SdFaultTree) -> tuple[str, AnalysisSession]:
        """Get-or-create the session addressed by ``model``'s content."""
        session_id = model_fingerprint(
            model, self.options.horizon, self.options.cutoff
        )[:_ID_LENGTH]
        with self._mutex:
            session = self._sessions.get(session_id)
            if session is None:
                session = AnalysisSession(model, self.options)
                self._sessions[session_id] = session
                self._locks[session_id] = threading.Lock()
        return session_id, session

    def get(self, session_id: str) -> AnalysisSession:
        with self._mutex:
            session = self._sessions.get(session_id)
        if session is None:
            raise ServiceError(f"unknown session {session_id!r}")
        return session

    def _lock_of(self, session_id: str) -> threading.Lock:
        with self._mutex:
            lock = self._locks.get(session_id)
        if lock is None:
            raise ServiceError(f"unknown session {session_id!r}")
        return lock

    def guard(self, session_id: str) -> "_SessionGuard":
        """``with``-style exclusive access to one session."""
        return _SessionGuard(self._lock_of(session_id), self.get(session_id))


class _SessionGuard:
    def __init__(
        self, lock: threading.Lock, session: AnalysisSession | None = None
    ) -> None:
        self._lock = lock
        self._session = session

    def __enter__(self) -> AnalysisSession:
        self._lock.acquire()
        return self._session  # type: ignore[return-value]

    def __exit__(self, *exc_info: object) -> None:
        self._lock.release()
