"""What-if edits on SD fault trees.

:class:`~repro.core.sdft.SdFaultTree` is immutable, so an edit is a
recipe for constructing a *new* model from an old one.  The edit
vocabulary matches the service protocol: change a static probability,
scale the rates of a dynamic event's chain, rewire a gate, or add /
remove a trigger edge.  All structural validation (acyclicity, trigger
target checks, duplicate names) is delegated to the ``SdFaultTree``
constructor, so an invalid edit fails loudly with the same
:class:`~repro.errors.ModelError` family a hand-built model would raise.

Each edit class serialises to a plain dict (``edit_to_dict`` /
``edit_from_dict``) for the stdio-JSONL protocol and the session
journal.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence, Union

from repro.core.sdft import DynamicBasicEvent, SdFaultTree
from repro.ctmc.chain import Ctmc
from repro.ctmc.triggered import TriggeredCtmc
from repro.errors import ModelError
from repro.ft.tree import BasicEvent, Gate, GateType


@dataclass(frozen=True)
class SetProbability:
    """Set the per-mission probability of a static basic event."""

    event: str
    probability: float


@dataclass(frozen=True)
class ScaleRates:
    """Multiply every transition rate of a dynamic event's chain by ``factor``.

    This is the canonical "rate change" edit: it preserves the chain's
    state space, initial distribution, failed set and (for triggered
    chains) the on/off structure, so the edited model is guaranteed to
    stay valid.
    """

    event: str
    factor: float


@dataclass(frozen=True)
class SetGate:
    """Rewire a gate: replace its type, children and (for ATLEAST) ``k``.

    The named gate must already exist; creating new gates is a modelling
    operation, not a what-if edit.
    """

    gate: str
    gate_type: str
    children: tuple[str, ...]
    k: int | None = None


@dataclass(frozen=True)
class SetTrigger:
    """Make ``gate`` the trigger of the given dynamic events.

    Replaces the gate's previous target list.  Events listed here must
    not be triggered by another gate (SD fault trees allow one trigger
    per event); remove the other edge first.
    """

    gate: str
    events: tuple[str, ...]


@dataclass(frozen=True)
class RemoveTrigger:
    """Delete the trigger edge originating at ``gate``."""

    gate: str


Edit = Union[SetProbability, ScaleRates, SetGate, SetTrigger, RemoveTrigger]

_EDIT_KINDS = {
    "set-probability": SetProbability,
    "scale-rates": ScaleRates,
    "set-gate": SetGate,
    "set-trigger": SetTrigger,
    "remove-trigger": RemoveTrigger,
}


def _scaled_chain(chain: Ctmc, factor: float) -> Ctmc:
    if factor < 0.0:
        raise ModelError(f"rate scale factor must be non-negative, got {factor}")
    rates = {edge: rate * factor for edge, rate in chain.rates.items()}
    if isinstance(chain, TriggeredCtmc):
        return TriggeredCtmc(
            chain.states,
            chain.initial,
            rates,
            chain.failed,
            chain.on_states,
            chain.switch_on,
            chain.switch_off,
        )
    return Ctmc(chain.states, chain.initial, rates, chain.failed)


def apply_edits(sdft: SdFaultTree, edits: Sequence[Edit]) -> SdFaultTree:
    """Return a new model with ``edits`` applied in order.

    Raises :class:`~repro.errors.ModelError` (or a subclass) when an
    edit references an unknown node or would produce an invalid model.
    """
    static: dict[str, BasicEvent] = dict(sdft.static_events)
    dynamic: dict[str, DynamicBasicEvent] = dict(sdft.dynamic_events)
    gates: dict[str, Gate] = dict(sdft.structure.gates)
    triggers: dict[str, tuple[str, ...]] = dict(sdft.triggers)

    for edit in edits:
        if isinstance(edit, SetProbability):
            old = static.get(edit.event)
            if old is None:
                raise ModelError(
                    f"edit references unknown static event {edit.event!r}"
                )
            static[edit.event] = BasicEvent(
                old.name, float(edit.probability), old.description
            )
        elif isinstance(edit, ScaleRates):
            old_dyn = dynamic.get(edit.event)
            if old_dyn is None:
                raise ModelError(
                    f"edit references unknown dynamic event {edit.event!r}"
                )
            dynamic[edit.event] = DynamicBasicEvent(
                old_dyn.name,
                _scaled_chain(old_dyn.chain, float(edit.factor)),
                old_dyn.description,
            )
        elif isinstance(edit, SetGate):
            old_gate = gates.get(edit.gate)
            if old_gate is None:
                raise ModelError(f"edit references unknown gate {edit.gate!r}")
            try:
                gate_type = GateType(edit.gate_type)
            except ValueError:
                raise ModelError(
                    f"unknown gate type {edit.gate_type!r}"
                ) from None
            gates[edit.gate] = Gate(
                old_gate.name,
                gate_type,
                tuple(edit.children),
                k=edit.k,
                description=old_gate.description,
            )
        elif isinstance(edit, SetTrigger):
            triggers[edit.gate] = tuple(edit.events)
            if not edit.events:
                triggers.pop(edit.gate, None)
        elif isinstance(edit, RemoveTrigger):
            if edit.gate not in triggers:
                raise ModelError(
                    f"edit removes a trigger that does not exist on gate "
                    f"{edit.gate!r}"
                )
            del triggers[edit.gate]
        else:  # pragma: no cover - exhaustive by construction
            raise ModelError(f"unknown edit {edit!r}")

    return SdFaultTree(
        sdft.top,
        static.values(),
        dynamic.values(),
        gates.values(),
        triggers=triggers,
        name=sdft.name,
    )


def edit_to_dict(edit: Edit) -> dict:
    """Serialise an edit for the wire protocol / journal."""
    if isinstance(edit, SetProbability):
        return {
            "kind": "set-probability",
            "event": edit.event,
            "probability": edit.probability,
        }
    if isinstance(edit, ScaleRates):
        return {"kind": "scale-rates", "event": edit.event, "factor": edit.factor}
    if isinstance(edit, SetGate):
        payload: dict = {
            "kind": "set-gate",
            "gate": edit.gate,
            "gate_type": edit.gate_type,
            "children": list(edit.children),
        }
        if edit.k is not None:
            payload["k"] = edit.k
        return payload
    if isinstance(edit, SetTrigger):
        return {"kind": "set-trigger", "gate": edit.gate, "events": list(edit.events)}
    if isinstance(edit, RemoveTrigger):
        return {"kind": "remove-trigger", "gate": edit.gate}
    raise ModelError(f"unknown edit {edit!r}")  # pragma: no cover


def edit_from_dict(data: Mapping) -> Edit:
    """Parse a protocol edit dict; raises :class:`ModelError` on junk."""
    kind = data.get("kind")
    if kind not in _EDIT_KINDS:
        raise ModelError(f"unknown edit kind {kind!r}")
    try:
        if kind == "set-probability":
            return SetProbability(str(data["event"]), float(data["probability"]))
        if kind == "scale-rates":
            return ScaleRates(str(data["event"]), float(data["factor"]))
        if kind == "set-gate":
            k = data.get("k")
            return SetGate(
                str(data["gate"]),
                str(data["gate_type"]),
                tuple(str(c) for c in data["children"]),
                k=None if k is None else int(k),
            )
        if kind == "set-trigger":
            return SetTrigger(
                str(data["gate"]), tuple(str(e) for e in data["events"])
            )
        return RemoveTrigger(str(data["gate"]))
    except (KeyError, TypeError, ValueError) as exc:
        raise ModelError(f"malformed {kind!r} edit: {exc}") from exc
