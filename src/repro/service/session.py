"""Resumable analysis sessions with an incremental what-if engine.

An :class:`AnalysisSession` owns a model, its options, and the
artifacts of the previous run (translation, cutset family, per-module
families, the fingerprint-keyed solve store).  The lifecycle:

``analyze()``
    A full pipeline run that *captures* artifacts.  With a deadline it
    returns a sound partial bracket (cooperative budget); if the
    options name a checkpoint path, an interrupted run can be continued
    with :meth:`resume`.

``edit(...)``
    Apply :mod:`repro.service.edits` operations, producing a new
    immutable model; previous artifacts are kept — they are what makes
    the next run incremental.

``reanalyze()``
    Re-run the analysis reusing everything whose content fingerprint
    is unchanged: MOCUS runs only on modules the edit touched
    (:mod:`repro.service.incremental`) and only cutsets whose ``FT_C``
    model signature changed are re-solved (the previous solve store is
    primed into the quantification cache).  ``crosscheck=True``
    additionally runs a cold from-scratch analysis and proves the two
    agree on every semantic field, raising
    :class:`~repro.errors.CrosscheckError` otherwise.

Bit-identity here means the *semantic* fields: the failure probability,
the served method, the interval, and per-record ``(cutset, probability,
chain_states, bounded, lower_bound, ...)``.  Provenance annotations
(``cache_hit``, ``solve_seconds``, ``rung`` of cache-served records)
legitimately differ between warm and cold runs — exactly as they
already do between a cache-on and a cache-off run of the one-shot
pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.core.analyzer import AnalysisOptions, AnalysisReuse, analyze
from repro.core.quantify import McsQuantification
from repro.core.results import AnalysisResult
from repro.core.sdft import SdFaultTree
from repro.core.to_static import to_static
from repro.errors import CrosscheckError, ServiceError
from repro.ft.mocus import MocusOptions, MocusResult
from repro.robust.checkpoint import model_fingerprint
from repro.service.edits import Edit, apply_edits
from repro.service.incremental import FamilyCache, incremental_cutsets

__all__ = ["AnalysisSession", "EditReport", "assert_bit_identical"]

#: Record fields compared for bit-identity (provenance fields —
#: ``cache_hit``, ``solve_seconds``, and ``rung`` — are excluded: a
#: cache-served record reports how it was *obtained*, not a different
#: value).
_SEMANTIC_FIELDS = (
    "cutset",
    "probability",
    "is_dynamic",
    "n_dynamic_in_cutset",
    "n_dynamic_in_model",
    "n_added_dynamic",
    "chain_states",
    "trivially_zero",
    "bounded",
    "lower_bound",
)


@dataclass(frozen=True)
class EditReport:
    """What an :meth:`AnalysisSession.edit` call changed."""

    edits: tuple[Edit, ...]
    fingerprint_before: str
    fingerprint_after: str

    @property
    def changed(self) -> bool:
        return self.fingerprint_before != self.fingerprint_after


def assert_bit_identical(
    incremental: AnalysisResult, cold: AnalysisResult
) -> None:
    """Raise :class:`CrosscheckError` unless the two results agree.

    Compares every semantic field exactly (``==`` on floats, no
    tolerance: the incremental contract is bit-identity, not closeness).
    """
    if incremental.failure_probability != cold.failure_probability:
        raise CrosscheckError(
            f"incremental probability {incremental.failure_probability!r} "
            f"!= cold {cold.failure_probability!r}"
        )
    if incremental.method != cold.method:
        raise CrosscheckError(
            f"incremental method {incremental.method!r} != cold "
            f"{cold.method!r}"
        )
    if incremental.static_bound != cold.static_bound:
        raise CrosscheckError(
            f"incremental static bound {incremental.static_bound!r} != "
            f"cold {cold.static_bound!r}"
        )
    warm_interval = incremental.failure_probability_interval()
    cold_interval = cold.failure_probability_interval()
    if warm_interval != cold_interval:
        raise CrosscheckError(
            f"incremental interval {warm_interval!r} != cold "
            f"{cold_interval!r}"
        )
    if len(incremental.records) != len(cold.records):
        raise CrosscheckError(
            f"incremental produced {len(incremental.records)} records, "
            f"cold produced {len(cold.records)}"
        )
    for left, right in zip(incremental.records, cold.records):
        for name in _SEMANTIC_FIELDS:
            a, b = getattr(left, name), getattr(right, name)
            if a != b:
                raise CrosscheckError(
                    f"record {'+'.join(sorted(left.cutset))}: field "
                    f"{name} differs (incremental {a!r}, cold {b!r})"
                )


@dataclass
class _RunArtifacts:
    """What the previous run left behind for the next one."""

    tree: "object | None"  # translation tree used for MOCUS
    family: tuple[tuple[str, ...], ...]
    solves: dict[tuple, tuple[float, int]]
    #: The SD model those records quantified (dirty-set diff base).
    sdft: SdFaultTree | None = None
    #: Deterministic-rung records of the previous run, by cutset.
    records: "dict[frozenset, McsQuantification]" = field(
        default_factory=dict
    )


def _skeleton(model: SdFaultTree) -> tuple:
    """Everything record reuse requires to be *unchanged* except event
    content: the gate/trigger wiring and the static/dynamic partition.
    """
    return (
        model.top,
        frozenset(model.static_events),
        frozenset(model.dynamic_events),
        tuple(
            sorted(
                (name, gate.gate_type.value, gate.children, gate.k)
                for name, gate in model.structure.gates.items()
            )
        ),
        tuple(sorted((g, tuple(e)) for g, e in model.triggers.items())),
    )


def _dirty_events(model: SdFaultTree, previous: SdFaultTree) -> set[str]:
    """Events whose *content* changed between two same-skeleton models."""
    dirty: set[str] = set()
    for name, event in model.static_events.items():
        if event.probability != previous.static_events[name].probability:
            dirty.add(name)
    for name, dyn in model.dynamic_events.items():
        if (
            dyn.chain.fingerprint()
            != previous.dynamic_events[name].chain.fingerprint()
        ):
            dirty.add(name)
    return dirty


class AnalysisSession:
    """A long-lived analysis of one (evolving) model.

    Thread-unsafe by design — the daemon serialises requests per
    session.  The warm solver farm is process-global
    (:func:`repro.perf.pool.warm_farm`); the session merely drives runs
    through it via ``options.jobs``.
    """

    def __init__(
        self,
        model: SdFaultTree,
        options: AnalysisOptions | None = None,
    ) -> None:
        self.model = model
        self.options = options or AnalysisOptions()
        self.families = FamilyCache()
        self.runs = 0
        self.incremental_runs = 0
        self.last_mode: str = ""
        self.last_result: AnalysisResult | None = None
        self._previous: _RunArtifacts | None = None

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------

    @property
    def fingerprint(self) -> str:
        """Content fingerprint of the *current* model + analysis frame."""
        return model_fingerprint(
            self.model, self.options.horizon, self.options.cutoff
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def analyze(
        self, deadline_seconds: float | None = None
    ) -> AnalysisResult:
        """A full pipeline run, capturing artifacts for later reuse."""
        opts = self._run_options(deadline_seconds)
        reuse = AnalysisReuse(solves=self._primed_solves())
        result = analyze(self.model, opts, reuse=reuse)
        self._remember(reuse, result, mode="full")
        return result

    def resume(self, deadline_seconds: float | None = None) -> AnalysisResult:
        """Continue an interrupted run from its checkpoint.

        Requires ``options.checkpoint_path``; a fingerprint mismatch
        (the model was edited since the checkpoint) raises
        :class:`~repro.errors.CheckpointError` from the pipeline.
        """
        if self.options.checkpoint_path is None:
            raise ServiceError(
                "resume() needs options.checkpoint_path; the session was "
                "not configured for checkpointing"
            )
        opts = replace(self._run_options(deadline_seconds), resume=True)
        reuse = AnalysisReuse(solves=self._primed_solves())
        result = analyze(self.model, opts, reuse=reuse)
        self._remember(reuse, result, mode="resume")
        return result

    def edit(self, *edits: Edit) -> EditReport:
        """Apply edits, producing the session's new current model.

        Previous-run artifacts are deliberately retained: content
        fingerprints, not session bookkeeping, decide what is reusable.
        """
        if not edits:
            raise ServiceError("edit() called with no edits")
        before = self.fingerprint
        self.model = apply_edits(self.model, list(edits))
        return EditReport(tuple(edits), before, self.fingerprint)

    def reanalyze(
        self,
        deadline_seconds: float | None = None,
        crosscheck: bool = False,
    ) -> AnalysisResult:
        """Re-run the analysis, reusing fingerprint-unchanged work.

        Falls back to a cold run — never a wrong answer — when no
        incremental strategy applies.  With ``crosscheck=True`` a full
        from-scratch run is performed as well and compared field by
        field (:func:`assert_bit_identical`).
        """
        opts = self._run_options(deadline_seconds)
        reuse = AnalysisReuse(solves=self._primed_solves())
        mode = "full"
        if self._incremental_applicable(opts):
            translation = to_static(self.model, opts.horizon)
            mocus_tree = translation.tree
            if opts.mocus_probability_overrides:
                mocus_tree = mocus_tree.with_probabilities(
                    opts.mocus_probability_overrides
                )
            previous = self._previous
            found = incremental_cutsets(
                mocus_tree,
                MocusOptions(
                    cutoff=opts.cutoff, max_partials=opts.max_partials
                ),
                self.families,
                previous_tree=previous.tree if previous else None,
                previous_family=previous.family if previous else (),
            )
            reuse.translation = translation
            if found is not None:
                mocus_result, stats = found
                reuse.cutsets = mocus_result
                reuse.note = stats.summary()
                mode = stats.mode
            reuse.records = self._reusable_records()
        result = analyze(self.model, opts, reuse=reuse)
        self._remember(reuse, result, mode=mode)
        if mode != "full":
            self.incremental_runs += 1
        if crosscheck:
            cold = analyze(self.model, opts, reuse=AnalysisReuse())
            assert_bit_identical(result, cold)
        return result

    def stats(self) -> dict:
        """Session counters for the service ``stats`` operation."""
        return {
            "fingerprint": self.fingerprint,
            "runs": self.runs,
            "incremental_runs": self.incremental_runs,
            "last_mode": self.last_mode,
            "module_families": len(self.families),
            "family_hits": self.families.hits,
            "family_misses": self.families.misses,
            "solve_store": (
                len(self._previous.solves) if self._previous else 0
            ),
        }

    def close(self) -> None:
        """Drop retained artifacts (the session stays usable cold)."""
        self._previous = None
        self.last_result = None

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _run_options(
        self, deadline_seconds: float | None
    ) -> AnalysisOptions:
        """Per-request options: a deadline becomes a cooperative budget.

        The deadline run gets ``fault_isolation`` (partial work must
        degrade per cutset, not abort) and at least ``verify="cheap"``
        so the served bracket is invariant-checked (P3) before it goes
        out.
        """
        opts = self.options
        if deadline_seconds is None:
            return opts
        verify = opts.verify if opts.verify != "off" else "cheap"
        return replace(
            opts,
            wall_seconds=deadline_seconds,
            fault_isolation=True,
            verify=verify,
        )

    def _primed_solves(self) -> dict | None:
        if self._previous is None or not self._previous.solves:
            return None
        return dict(self._previous.solves)

    def _reusable_records(self) -> "dict[frozenset, McsQuantification] | None":
        """Previous records provably untouched by the edits since then.

        Sound only when the gate/trigger skeleton is unchanged: a
        record's ``dependencies`` name every event whose content its
        value reads, so with the skeleton fixed and no dirty event among
        them, re-quantifying would rebuild the identical ``FT_C`` and
        produce the identical value.  Any structural edit disables
        record reuse wholesale (solve-store priming still applies — it
        is content-addressed and cannot go stale).
        """
        previous = self._previous
        if previous is None or previous.sdft is None or not previous.records:
            return None
        if _skeleton(self.model) != _skeleton(previous.sdft):
            return None
        dirty = _dirty_events(self.model, previous.sdft)
        reusable = {
            cutset: record
            for cutset, record in previous.records.items()
            if not dirty.intersection(record.dependencies)
        }
        return reusable or None

    def _incremental_applicable(self, opts: AnalysisOptions) -> bool:
        # Simplification rewrites the model between the session's view
        # and the pipeline's; injecting session-computed artifacts would
        # target the wrong tree.  Checkpoint/resume frames own the
        # cutset list too.  Overrides *are* supported (applied above).
        return not opts.simplify and not opts.resume and opts.checkpoint_path is None

    def _remember(
        self, reuse: AnalysisReuse, result: AnalysisResult, mode: str
    ) -> None:
        self.runs += 1
        self.last_mode = mode
        self.last_result = result
        solves: dict[tuple, tuple[float, int]] = {}
        if self._previous is not None:
            # Accumulate: signature-keyed values never go stale, and an
            # edit that is later reverted hits the old entries again.
            solves.update(self._previous.solves)
        if reuse.out_solves:
            solves.update(reuse.out_solves)
        tree = None
        family: tuple[tuple[str, ...], ...] = ()
        mocus_result: MocusResult | None = reuse.out_mocus
        if (
            mocus_result is not None
            and not mocus_result.truncated
            and not result.mcs_truncated
        ):
            family = mocus_result.full_cutsets
            translation = reuse.out_translation
            if translation is not None:
                tree = translation.tree
                if self.options.mocus_probability_overrides:
                    tree = tree.with_probabilities(
                        self.options.mocus_probability_overrides
                    )
        # Records do not accumulate across edits (unlike the solve
        # store): the dirty-set diff is computed against the one model
        # the records came from, so only the latest complete list is
        # kept.  Non-deterministic rungs (skipped, monte_carlo, bound
        # via ladder descent) are products of budget pressure or faults
        # of *that* run — a fresh run would do better, so never reuse.
        records = {
            record.cutset: record
            for record in result.records
            if record.rung in ("exact", "lumped") and record.dependencies
        }
        if tree is not None or solves or records:
            self._previous = _RunArtifacts(
                tree=tree,
                family=family,
                solves=solves,
                sdft=self.model,
                records=records,
            )


def session_for(
    model: SdFaultTree, options: AnalysisOptions | None = None
) -> AnalysisSession:
    """Convenience constructor mirroring ``analyze(model, options)``."""
    return AnalysisSession(model, options)
