"""Deterministic chaos catalogue for the analysis service.

:mod:`repro.robust.chaos` throws randomized adversity at one in-process
analysis; this module throws *specific, scripted* adversity at the
service layer — the failure modes a long-lived daemon actually meets —
and classifies each scenario with the same vocabulary (``clean`` /
``loud`` / ``bracketed`` / ``silent`` / ``contract``):

``deadline@quantify``
    An analysis request whose deadline expires mid-quantification.  The
    contract: the response is ``ok: true`` and carries the served
    ``method`` plus a probability ``interval`` that soundly brackets
    the clean answer — never an error.  An error response here is a
    ``contract`` breach; an interval that misses the clean answer is
    ``silent``.

``sigkill@journal_begin``
    A daemon subprocess is SIGKILLed between writing a request's
    ``begin`` journal record and committing its result (the
    ``REPRO_SERVICE_KILL_AFTER`` hook).  A fresh daemon started on the
    same journal must replay the completed load/edit, abort the
    in-flight analysis, and then produce a final answer bit-identical
    to an in-process cold analysis of the edited model.

``corrupt@journal_record``
    An interior journal record is bit-flipped on disk.  Restarting on
    that journal must raise a typed
    :class:`~repro.errors.JournalError` (``loud``) — replaying guessed
    state would be silent corruption.

``torn@journal_tail``
    The journal's last record is truncated mid-write (a torn write —
    the one corruption a crash legitimately produces).  Restart must
    succeed, drop the torn tail with a recovery note, and keep every
    intact record.

Everything is deterministic — no seeds, no randomness; the catalogue
is exposed as ``sdft chaos --catalog service`` and run in CI.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

from repro.core.analyzer import AnalysisOptions, analyze
from repro.errors import JournalError, ReproError
from repro.models.formats import sdft_from_dict, sdft_to_dict
from repro.robust.chaos import CampaignReport, RunOutcome
from repro.service.daemon import ServiceDaemon
from repro.service.edits import apply_edits, edit_from_dict

__all__ = ["run_service_campaign"]

#: Relative slack when testing whether an interval brackets the clean
#: answer (pure float accumulation differences).
_BRACKET_RTOL = 1e-9

#: Deadline (seconds) that is guaranteed to expire mid-quantification
#: of the campaign model on any realistic machine.
_TINY_DEADLINE = 0.002

#: The scripted what-if edit each scenario applies (a rate change on a
#: dynamic BWR event; overridden for non-default models by taking the
#: first dynamic event).
_EDIT_FACTOR = 1.75

#: How long to wait for the killed daemon subprocess to die.
_KILL_WAIT_SECONDS = 120.0


def _campaign_model(model) -> "tuple[object, dict]":
    """The model under test (default: built-in BWR) and its dict form."""
    if model is None:
        from repro.models.bwr import build_bwr

        model = build_bwr()
    payload = sdft_to_dict(model)
    # Round-trip through the wire format so the in-process reference
    # analyses *exactly* what the daemon deserialises.
    return sdft_from_dict(payload), payload


def _scripted_edit(model) -> dict:
    """A deterministic rate edit touching the model's dynamic part."""
    name = sorted(model.dynamic_events)[0]
    return {"kind": "scale-rates", "event": name, "factor": _EDIT_FACTOR}


def _brackets(interval: "tuple[float, float]", truth: float) -> bool:
    lower, upper = interval
    slack = _BRACKET_RTOL * max(abs(truth), 1.0)
    return lower - slack <= truth <= upper + slack


# ----------------------------------------------------------------------
# Scenarios
# ----------------------------------------------------------------------


def _scenario_deadline(
    run: int, payload: dict, options: AnalysisOptions, clean: float
) -> RunOutcome:
    """Deadline expiry mid-quantify: ok + method + sound interval."""
    name = "deadline@quantify"
    daemon = ServiceDaemon(options)
    loaded = daemon.handle_request({"op": "load", "model": payload})
    if not loaded.get("ok"):
        return RunOutcome(
            run, (name,), "contract", f"load failed: {loaded.get('error')}"
        )
    response = daemon.handle_request(
        {
            "op": "analyze",
            "session": loaded["session"],
            "deadline_seconds": _TINY_DEADLINE,
        }
    )
    if not response.get("ok"):
        return RunOutcome(
            run,
            (name,),
            "contract",
            "deadline expiry must yield a sound partial result, got "
            f"error {response.get('error')}",
        )
    if "method" not in response or "interval" not in response:
        return RunOutcome(
            run,
            (name,),
            "contract",
            "partial response is missing 'method' or 'interval'",
        )
    interval = tuple(response["interval"])
    if not _brackets(interval, clean):
        return RunOutcome(
            run,
            (name,),
            "silent",
            f"served interval {interval} misses clean answer {clean:.6e}",
            probability=response.get("probability"),
            interval=interval,
        )
    outcome = "bracketed" if response.get("deadline_expired") else "clean"
    return RunOutcome(
        run,
        (name,),
        outcome,
        f"method={response['method']} deadline_expired="
        f"{response.get('deadline_expired')}",
        probability=response.get("probability"),
        interval=interval,
    )


def _scenario_sigkill(
    run: int, payload: dict, options: AnalysisOptions, scratch: Path
) -> RunOutcome:
    """SIGKILL between journal begin and commit; restart must recover."""
    name = "sigkill@journal_begin"
    journal = scratch / "sigkill.journal"
    edit = _scripted_edit(sdft_from_dict(payload))

    proc = _spawn_daemon(journal, options, kill_after="journal_begin:reanalyze")
    try:
        session_id = _roundtrip(proc, {"op": "load", "model": payload})["session"]
        _roundtrip(proc, {"op": "edit", "session": session_id, "edits": [edit]})
        # The daemon SIGKILLs itself right after journalling this one.
        proc.stdin.write(
            json.dumps({"op": "reanalyze", "session": session_id}) + "\n"
        )
        proc.stdin.flush()
        returncode = proc.wait(timeout=_KILL_WAIT_SECONDS)
    except Exception as error:  # noqa: BLE001 - classified, not raised
        proc.kill()
        proc.wait()
        return RunOutcome(
            run, (name,), "contract", f"daemon subprocess failed: {error}"
        )
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()
    if returncode != -9:
        return RunOutcome(
            run,
            (name,),
            "contract",
            f"kill hook did not fire (daemon exited {returncode})",
        )

    # Restart on the same journal: replay load+edit, abort the analysis.
    try:
        daemon = ServiceDaemon(options, journal_path=str(journal))
    except ReproError as error:
        return RunOutcome(
            run, (name,), "loud", f"restart refused journal: {error}"
        )
    aborted = daemon.counters["aborted_in_flight"]
    replayed = daemon.counters["replayed"]
    if aborted < 1 or replayed < 2:
        return RunOutcome(
            run,
            (name,),
            "silent",
            f"recovery incomplete: replayed={replayed} (want >=2) "
            f"aborted_in_flight={aborted} (want >=1)",
        )
    response = daemon.handle_request(
        {"op": "analyze", "session": session_id}
    )
    if not response.get("ok"):
        return RunOutcome(
            run,
            (name,),
            "contract",
            f"post-recovery analysis failed: {response.get('error')}",
        )
    reference = analyze(
        apply_edits(sdft_from_dict(payload), [edit_from_dict(edit)]), options
    )
    if response["probability"] != reference.failure_probability:
        return RunOutcome(
            run,
            (name,),
            "silent",
            f"post-recovery answer {response['probability']!r} != cold "
            f"reference {reference.failure_probability!r}",
            probability=response["probability"],
        )
    return RunOutcome(
        run,
        (name,),
        "clean",
        f"replayed={replayed} aborted_in_flight={aborted}; recovered "
        "answer bit-identical to cold analysis",
        probability=response["probability"],
        interval=tuple(response["interval"]),
    )


def _scenario_corrupt_journal(
    run: int, payload: dict, options: AnalysisOptions, scratch: Path
) -> RunOutcome:
    """An interior bit-flip must make restart fail loudly."""
    name = "corrupt@journal_record"
    journal = scratch / "corrupt.journal"
    _write_journal(journal, payload, options)

    lines = journal.read_text().splitlines()
    if len(lines) < 2:
        return RunOutcome(
            run, (name,), "contract", "journal too short to corrupt"
        )
    # Flip one character inside the *first* record's payload (interior
    # corruption, not a torn tail — the CRC must catch it).
    first = lines[0]
    index = first.find('"op"')
    corrupted = first[: index + 2] + "0" + first[index + 3 :]
    journal.write_text("\n".join([corrupted] + lines[1:]) + "\n")

    try:
        ServiceDaemon(options, journal_path=str(journal))
    except JournalError as error:
        return RunOutcome(
            run, (name,), "loud", f"restart raised JournalError: {error}"
        )
    except ReproError as error:
        return RunOutcome(
            run,
            (name,),
            "contract",
            f"wrong error type {type(error).__name__}: {error}",
        )
    return RunOutcome(
        run,
        (name,),
        "silent",
        "daemon restarted over a corrupted journal without noticing",
    )


def _scenario_torn_journal(
    run: int, payload: dict, options: AnalysisOptions, scratch: Path
) -> RunOutcome:
    """A truncated last record must be dropped with a recovery note."""
    name = "torn@journal_tail"
    journal = scratch / "torn.journal"
    _write_journal(journal, payload, options)

    text = journal.read_text()
    lines = text.splitlines()
    torn = "\n".join(lines[:-1]) + "\n" + lines[-1][: len(lines[-1]) // 2]
    journal.write_text(torn)

    try:
        daemon = ServiceDaemon(options, journal_path=str(journal))
    except ReproError as error:
        return RunOutcome(
            run,
            (name,),
            "contract",
            f"torn tail must not refuse restart: {error}",
        )
    if not any("torn" in note or "partial" in note for note in daemon.recovery_notes):
        return RunOutcome(
            run,
            (name,),
            "silent",
            "torn tail dropped without a recovery note "
            f"(notes: {daemon.recovery_notes})",
        )
    if daemon.counters["replayed"] < 1:
        return RunOutcome(
            run,
            (name,),
            "silent",
            "intact journal prefix was not replayed",
        )
    return RunOutcome(
        run,
        (name,),
        "clean",
        f"torn tail dropped; notes: {daemon.recovery_notes}",
    )


# ----------------------------------------------------------------------
# Campaign driver
# ----------------------------------------------------------------------


def run_service_campaign(
    model=None, options: AnalysisOptions | None = None
) -> CampaignReport:
    """Run the deterministic service chaos catalogue.

    Returns the same :class:`~repro.robust.chaos.CampaignReport` shape
    as the randomized analysis campaign, so reporting/CLI code is
    shared; ``seed`` is 0 (the catalogue is fully scripted).
    """
    options = options or AnalysisOptions(horizon=24.0, cutoff=1e-10)
    options = _plain_options(options)
    model, payload = _campaign_model(model)
    started = time.perf_counter()
    clean = analyze(model, options)
    clean_interval = clean.failure_probability_interval()

    outcomes: list[RunOutcome] = []
    with tempfile.TemporaryDirectory(prefix="sdft-service-chaos-") as scratch_str:
        scratch = Path(scratch_str)
        outcomes.append(
            _scenario_deadline(0, payload, options, clean.failure_probability)
        )
        outcomes.append(_scenario_sigkill(1, payload, options, scratch))
        outcomes.append(_scenario_corrupt_journal(2, payload, options, scratch))
        outcomes.append(_scenario_torn_journal(3, payload, options, scratch))

    return CampaignReport(
        model=getattr(model, "name", "") or "service-catalog",
        runs=len(outcomes),
        seed=0,
        jobs=options.jobs if isinstance(options.jobs, int) else 1,
        verify=options.verify or "off",
        clean_probability=clean.failure_probability,
        clean_interval=clean_interval,
        clean_cutsets=len(clean.records),
        outcomes=tuple(outcomes),
        elapsed_seconds=time.perf_counter() - started,
    )


def _plain_options(options: AnalysisOptions) -> AnalysisOptions:
    """Options safe to mirror into the daemon subprocess."""
    from dataclasses import replace

    return replace(options, checkpoint_path=None)


# ----------------------------------------------------------------------
# Subprocess helpers
# ----------------------------------------------------------------------

_CHILD_SCRIPT = """\
import json, sys
from repro.core.analyzer import AnalysisOptions
from repro.service.daemon import ServiceDaemon

knobs = json.loads(sys.argv[1])
options = AnalysisOptions(
    horizon=knobs["horizon"], cutoff=knobs["cutoff"], jobs=knobs["jobs"]
)
sys.exit(ServiceDaemon(options, journal_path=sys.argv[2]).serve())
"""


def _spawn_daemon(
    journal: Path, options: AnalysisOptions, kill_after: str = ""
) -> "subprocess.Popen[str]":
    env = dict(os.environ)
    package_root = str(Path(__file__).resolve().parents[2])
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (package_root, env.get("PYTHONPATH", "")) if p
    )
    if kill_after:
        env["REPRO_SERVICE_KILL_AFTER"] = kill_after
    else:
        env.pop("REPRO_SERVICE_KILL_AFTER", None)
    knobs = json.dumps(
        {
            "horizon": options.horizon,
            "cutoff": options.cutoff,
            "jobs": options.jobs if isinstance(options.jobs, int) else 1,
        }
    )
    return subprocess.Popen(
        [sys.executable, "-c", _CHILD_SCRIPT, knobs, str(journal)],
        stdin=subprocess.PIPE,
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        text=True,
        env=env,
    )


def _roundtrip(proc: "subprocess.Popen[str]", request: dict) -> dict:
    """One synchronous request/response over the child's stdio."""
    proc.stdin.write(json.dumps(request) + "\n")
    proc.stdin.flush()
    line = proc.stdout.readline()
    if not line:
        raise RuntimeError(f"daemon died before answering {request.get('op')}")
    response = json.loads(line)
    if not response.get("ok"):
        raise RuntimeError(
            f"{request.get('op')} failed: {response.get('error')}"
        )
    return response


def _write_journal(
    journal: Path, payload: dict, options: AnalysisOptions
) -> None:
    """Produce a real journal: a completed load + edit."""
    daemon = ServiceDaemon(options, journal_path=str(journal))
    loaded = daemon.handle_request({"op": "load", "model": payload})
    edit = _scripted_edit(sdft_from_dict(payload))
    daemon.handle_request(
        {"op": "edit", "session": loaded["session"], "edits": [edit]}
    )
    daemon.journal.close()
